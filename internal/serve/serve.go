// Package serve exposes a repro.Store as a streaming multi-tenant HTTP
// service: the network front end of the dedup engines.
//
// Endpoints (all JSON unless noted):
//
//	POST   /v1/backups/{label}          ingest: chunked request body → Store.IngestStream
//	GET    /v1/backups                  list retained backups
//	GET    /v1/backups/{label}          one backup's stats
//	GET    /v1/backups/{label}/restore  restore: streamed response body (?mode=&cache=&workers=&verify=)
//	DELETE /v1/backups/{label}          forget
//	POST   /v1/compact                  garbage-collect (?threshold=)
//	POST   /v1/check                    fsck (?verify=)
//	POST   /v1/repair                   quarantine invariant-failing containers (?verify=)
//	GET    /v1/stats                    storage + server statistics (incl. stage timings + SLOs)
//	GET    /healthz                     liveness
//	GET    /metrics                     Prometheus exposition (telemetry Default registry)
//	GET    /debug/traces                tail-captured slow/errored request span trees
//	GET    /debug/snapshot, /debug/pprof/*  further telemetry surface
//
// Streaming requests may carry a W3C `traceparent` header; the server joins
// the caller's trace (its serve.ingest/serve.restore span tree becomes a
// child of the client span) and echoes its own position back in the
// response's traceparent header.
//
// Labels may contain slashes (the workload generator's "u0/g01" shape); the
// "/restore" suffix is reserved and routed to the restore handler.
//
// Multi-tenancy: every request carries a tenant identity in the X-Tenant
// header (default "default"). Each tenant gets an independent in-flight
// ingest budget and an optional token-bucket bandwidth cap; exceeding the
// in-flight budget (or the server-wide one) returns 429 with a Retry-After
// hint — the client owns the backoff, the server never queues uploads.
// Concurrent uploads from all tenants multiplex onto the engine's
// multi-stream ingest path via Store.IngestStream, each as its own
// simulated-clock lane.
//
// Maintenance is gated inside the Store itself: foreground streams hold the
// store's maintenance lock for read, the legacy exclusive passes (compact,
// repair) take it for write for their whole run, and the incremental
// maintenance epochs (POST /v1/maintenance, or the background scheduler)
// run concurrently with traffic and exclude it only for their short
// remap-and-drop commit.
//
// Shutdown drains: new work is refused with 503, in-flight ingest contexts
// are cancelled so engines abort at the next segment boundary (the
// cancelled-ingest path — sealed containers stay sealed, the index flushes,
// the store is fsck-clean), and handlers are waited for.
package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro"
	"repro/internal/telemetry"
)

// Telemetry: the serve.* surface on the PR-1 /metrics endpoint.
var (
	telIngests = telemetry.NewCounter(telemetry.Name("serve_requests_total", "route", "ingest"),
		"HTTP requests, by route")
	telRestoreReqs = telemetry.NewCounter(telemetry.Name("serve_requests_total", "route", "restore"), "")
	telAdminReqs   = telemetry.NewCounter(telemetry.Name("serve_requests_total", "route", "admin"), "")
	telRejected    = telemetry.NewCounter("serve_backpressure_429_total",
		"ingest requests refused because an in-flight limit was reached")
	telErrors = telemetry.NewCounter("serve_http_errors_total",
		"requests that finished with a 4xx/5xx status (429s counted separately)")
	telIngestBytes = telemetry.NewCounter("serve_ingest_bytes_total",
		"logical bytes accepted over HTTP ingest")
	telRestoreBytes = telemetry.NewCounter("serve_restore_bytes_total",
		"bytes streamed out of HTTP restores")
	telInflight = telemetry.NewGauge("serve_inflight_requests",
		"requests currently being served")
	telIngestSeconds = telemetry.NewHistogram("serve_ingest_seconds",
		"wall-clock seconds per HTTP ingest",
		[]float64{0.001, 0.005, 0.02, 0.1, 0.5, 2, 10, 60})
)

// Config parameterizes a Server.
type Config struct {
	// Store is the open store to serve. The server does not close it.
	Store *repro.Store
	// MaxTenantInflight caps concurrent ingests per tenant (default 4);
	// the cap'th+1 concurrent upload gets 429.
	MaxTenantInflight int
	// MaxTotalInflight caps concurrent ingests server-wide (default 32).
	MaxTotalInflight int
	// TenantBandwidth throttles each tenant's aggregate upload rate in
	// bytes/second through a token bucket. 0 means unthrottled.
	TenantBandwidth float64
	// RestoreVerify forces fingerprint verification on every restore
	// regardless of the request's ?verify= (requires a data-storing store).
	RestoreVerify bool
	// OnIngest, when set, runs after each successfully committed ingest
	// with the total committed so far. dedupd wires its -crash.after
	// machinery (die without closing the store, for recovery testing)
	// through this hook.
	OnIngest func(completed int)
}

func (c Config) withDefaults() Config {
	if c.MaxTenantInflight <= 0 {
		c.MaxTenantInflight = 4
	}
	if c.MaxTotalInflight <= 0 {
		c.MaxTotalInflight = 32
	}
	return c
}

// Server is the HTTP front end. It implements http.Handler; run it under
// any http.Server. Use Shutdown for a graceful drain.
type Server struct {
	cfg   Config
	store *repro.Store
	mux   *http.ServeMux

	base     context.Context // cancelled by Shutdown: aborts in-flight ingests
	cancel   context.CancelFunc
	wg       sync.WaitGroup // in-flight request handlers
	limits   *limiter
	slo      *sloTracker
	mu       sync.Mutex
	draining bool
	ingested int // successful ingests, for the OnIngest hook
}

// New builds a Server over an open store.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	base, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:    cfg,
		store:  cfg.Store,
		base:   base,
		cancel: cancel,
		limits: newLimiter(cfg.MaxTenantInflight, cfg.MaxTotalInflight, cfg.TenantBandwidth),
		slo:    newSLOTracker(),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/backups/", s.handleIngest)
	mux.HandleFunc("GET /v1/backups/", s.handleBackupGet)
	mux.HandleFunc("DELETE /v1/backups/", s.handleForget)
	mux.HandleFunc("GET /v1/backups", s.handleList)
	mux.HandleFunc("GET /v1/backups/{$}", s.handleList)
	mux.HandleFunc("POST /v1/compact", s.handleCompact)
	mux.HandleFunc("POST /v1/maintenance", s.handleMaintenance)
	mux.HandleFunc("POST /v1/check", s.handleCheck)
	mux.HandleFunc("POST /v1/repair", s.handleRepair)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	// The observability surface rides on the service port too, so a loadgen
	// run (or an operator with one address) can scrape /metrics and pull
	// /debug/traces without the separate -telemetry listener.
	th := telemetry.Default().Handler()
	mux.Handle("GET /metrics", th)
	mux.Handle("GET /debug/", th)
	s.mux = mux
	return s
}

// statusRecorder captures the response status for SLO accounting and logs.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (sr *statusRecorder) WriteHeader(code int) {
	sr.code = code
	sr.ResponseWriter.WriteHeader(code)
}

// observed reports whether a request path counts against the service SLOs
// (the observability and liveness surface does not).
func observed(path string) bool {
	return !strings.HasPrefix(path, "/debug/") &&
		path != "/metrics" && path != "/healthz"
}

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	telInflight.Add(1)
	defer telInflight.Add(-1)
	if !observed(r.URL.Path) {
		s.mux.ServeHTTP(w, r)
		return
	}
	start := time.Now()
	sr := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
	s.mux.ServeHTTP(sr, r)
	dur := time.Since(start)
	ten := tenant(r)
	s.slo.Record(ten, sr.code, dur)

	attrs := []any{
		slog.String("method", r.Method),
		slog.String("path", r.URL.Path),
		slog.String("tenant", ten),
		slog.Int("status", sr.code),
		slog.Duration("dur", dur),
	}
	if tid, sid, ok := telemetry.ParseTraceParent(r.Header.Get("traceparent")); ok {
		_ = sid
		attrs = append(attrs, slog.String("trace", tid.String()))
	}
	switch {
	case sr.code >= 500:
		telemetry.Logger().Warn("request failed", attrs...)
	case sr.code >= 400:
		telemetry.Logger().Debug("request rejected", attrs...)
	default:
		telemetry.Logger().Debug("request", attrs...)
	}
}

// Shutdown drains the server: new requests are refused with 503, in-flight
// ingests are cancelled (they abort at the next segment boundary, leaving
// the store fsck-clean), and all handlers are waited for until ctx expires.
// The store itself stays open; the caller closes it after Shutdown returns.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	s.cancel()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("serve: drain incomplete: %w", ctx.Err())
	}
}

// Draining reports whether Shutdown has begun.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// enter registers a request with the drain tracker; it reports false (and
// writes 503) when the server is draining.
func (s *Server) enter(w http.ResponseWriter) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		httpError(w, http.StatusServiceUnavailable, "server is draining")
		return false
	}
	s.wg.Add(1)
	return true
}

// label extracts the backup label from a /v1/backups/… path.
func label(r *http.Request) string {
	return strings.TrimPrefix(r.URL.Path, "/v1/backups/")
}

func tenant(r *http.Request) string {
	if t := r.Header.Get("X-Tenant"); t != "" {
		return t
	}
	return "default"
}

// joinContext derives a context cancelled when either ctx (normally the
// request context, possibly already carrying trace identity) or the server's
// drain context is done.
func (s *Server) joinContext(ctx context.Context) (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithCancel(ctx)
	stop := context.AfterFunc(s.base, cancel)
	return ctx, func() { stop(); cancel() }
}

// traceContext returns the request context joined to the client's W3C
// traceparent, if the header carries a valid one: the server-side span tree
// then hangs off the caller's trace instead of starting a fresh one.
func traceContext(r *http.Request) context.Context {
	ctx := r.Context()
	if tid, sid, ok := telemetry.ParseTraceParent(r.Header.Get("traceparent")); ok {
		ctx = telemetry.ContextWithRemoteParent(ctx, tid, sid)
	}
	return ctx
}

// startRequestSpan opens the handler-level span for a streaming route and
// echoes the server's trace position back in the response traceparent
// header (before the body commits it).
func startRequestSpan(w http.ResponseWriter, r *http.Request, name, lbl, ten string) (context.Context, *telemetry.Span) {
	ctx, span := telemetry.StartSpan(traceContext(r), name)
	if span != nil {
		span.SetAttr("label", lbl)
		span.SetAttr("tenant", ten)
		w.Header().Set("traceparent", telemetry.FormatTraceParent(span.Trace(), span.ID()))
	}
	return ctx, span
}

type errorBody struct {
	Error string `json:"error"`
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	if code != http.StatusTooManyRequests {
		telErrors.Inc()
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(errorBody{Error: fmt.Sprintf(format, args...)}) //nolint:errcheck // best-effort error body
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v) //nolint:errcheck // response already committed
}

// BackupInfo is the wire form of one retained backup.
type BackupInfo struct {
	Label     string            `json:"label"`
	Chunks    int               `json:"chunks"`
	Fragments int               `json:"fragments"`
	Stats     repro.BackupStats `json:"stats"`
}

func backupInfo(b *repro.Backup) BackupInfo {
	return BackupInfo{Label: b.Label, Chunks: b.Chunks(), Fragments: b.Fragments(), Stats: b.Stats}
}

// handleIngest streams the request body into the store under the tenant's
// in-flight and bandwidth budgets.
func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	telIngests.Inc()
	lbl := label(r)
	if lbl == "" {
		httpError(w, http.StatusBadRequest, "missing backup label")
		return
	}
	if strings.HasSuffix(lbl, "/restore") {
		httpError(w, http.StatusBadRequest, "label suffix %q is reserved", "/restore")
		return
	}
	ten := tenant(r)
	release, ok := s.limits.acquire(ten)
	if !ok {
		telRejected.Inc()
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusTooManyRequests,
			"tenant %q at its in-flight ingest limit", ten)
		return
	}
	defer release()
	if !s.enter(w) {
		return
	}
	defer s.wg.Done()

	sctx, span := startRequestSpan(w, r, "serve.ingest", lbl, ten)
	defer span.End()
	ctx, cancel := s.joinContext(sctx)
	defer cancel()
	start := time.Now()
	body := s.limits.throttle(ctx, ten, r.Body)
	b, err := s.store.IngestStream(ctx, lbl, body)
	telIngestSeconds.Observe(time.Since(start).Seconds())
	if err != nil {
		span.SetError(err)
		if ctx.Err() != nil {
			// Cancelled by client disconnect or drain: the engine aborted at
			// a segment boundary and the store is consistent; 499-style.
			httpError(w, http.StatusServiceUnavailable, "ingest cancelled: %v", err)
			return
		}
		httpError(w, http.StatusInternalServerError, "ingest failed: %v", err)
		return
	}
	span.SetAttr("bytes", b.Stats.LogicalBytes)
	telIngestBytes.Add(b.Stats.LogicalBytes)
	writeJSON(w, http.StatusCreated, backupInfo(b))
	if s.cfg.OnIngest != nil {
		s.mu.Lock()
		s.ingested++
		n := s.ingested
		s.mu.Unlock()
		s.cfg.OnIngest(n)
	}
}

// restoreOptions parses ?mode=&cache=&workers=&decode=&verify= into
// RestoreOptions. mode faa is handled by the caller (different Store entry
// point). decode sets the wall-clock-only decode/verify worker count
// (0 = auto, 1 = inline serial); it never changes the restored bytes or the
// simulated clock.
func restoreOptions(r *http.Request, forceVerify bool) (repro.RestoreOptions, string, error) {
	q := r.URL.Query()
	mode := q.Get("mode")
	opts := repro.DefaultRestoreOptions()
	opts.Verify = forceVerify || q.Get("verify") == "1" || q.Get("verify") == "true"
	if c := q.Get("cache"); c != "" {
		n, err := strconv.Atoi(c)
		if err != nil || n < 0 {
			return opts, mode, fmt.Errorf("bad cache %q", c)
		}
		if n > 0 {
			opts.CacheContainers = n
		}
	}
	if ws := q.Get("workers"); ws != "" {
		n, err := strconv.Atoi(ws)
		if err != nil || n < 0 {
			return opts, mode, fmt.Errorf("bad workers %q", ws)
		}
		opts.Workers = n
	}
	if ds := q.Get("decode"); ds != "" {
		n, err := strconv.Atoi(ds)
		if err != nil || n < 0 {
			return opts, mode, fmt.Errorf("bad decode %q", ds)
		}
		opts.DecodeWorkers = n
	}
	switch mode {
	case "", "lru", "faa":
	case "opt":
		opts.Policy = repro.RestoreOPT
	case "pipelined":
		opts.Policy = repro.RestoreOPT
		opts.Coalesce = true
		if opts.Workers < 1 {
			opts.Workers = 1
		}
	default:
		return opts, mode, fmt.Errorf("unknown mode %q (want lru, opt, pipelined or faa)", mode)
	}
	return opts, mode, nil
}

// handleBackupGet serves both GET /v1/backups/{label} (stats) and
// GET /v1/backups/{label}/restore (streamed content).
func (s *Server) handleBackupGet(w http.ResponseWriter, r *http.Request) {
	lbl := label(r)
	if rest, ok := strings.CutSuffix(lbl, "/restore"); ok {
		s.restore(w, r, rest)
		return
	}
	telAdminReqs.Inc()
	b := s.store.FindBackup(lbl)
	if b == nil {
		httpError(w, http.StatusNotFound, "no backup %q", lbl)
		return
	}
	writeJSON(w, http.StatusOK, backupInfo(b))
}

// countingWriter tallies the bytes a restore streams out.
type countingWriter struct {
	w http.ResponseWriter
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

func (s *Server) restore(w http.ResponseWriter, r *http.Request, lbl string) {
	telRestoreReqs.Inc()
	if !s.enter(w) {
		return
	}
	defer s.wg.Done()
	b := s.store.FindBackup(lbl)
	if b == nil {
		httpError(w, http.StatusNotFound, "no backup %q", lbl)
		return
	}
	opts, mode, err := restoreOptions(r, s.cfg.RestoreVerify)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	sctx, span := startRequestSpan(w, r, "serve.restore", lbl, tenant(r))
	defer span.End()
	ctx, cancel := s.joinContext(sctx)
	defer cancel()
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-Backup-Label", b.Label)
	cw := &countingWriter{w: w}
	var st repro.RestoreStats
	if mode == "faa" {
		st, err = s.store.RestoreFAA(ctx, b, cw, int64(opts.CacheContainers)<<22, opts.Verify)
	} else {
		st, err = s.store.RestoreWith(ctx, b, cw, opts)
	}
	span.SetAttr("bytes", cw.n)
	telRestoreBytes.Add(cw.n)
	if err != nil {
		span.SetError(err)
		// Headers may already be out; if nothing was written yet we can
		// still send a clean error status.
		if cw.n == 0 {
			httpError(w, http.StatusInternalServerError, "restore failed: %v", err)
		}
		return
	}
	_ = st
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	telAdminReqs.Inc()
	bs := s.store.Backups()
	out := make([]BackupInfo, len(bs))
	for i, b := range bs {
		out[i] = backupInfo(b)
	}
	writeJSON(w, http.StatusOK, out)
}

// admin runs one administrative operation. Gating against concurrent
// streams is the Store's business now: Compact and Repair exclude
// everything for their whole run, maintenance epochs only for their commit.
func (s *Server) admin(w http.ResponseWriter, fn func() (any, error)) {
	telAdminReqs.Inc()
	if !s.enter(w) {
		return
	}
	defer s.wg.Done()
	v, err := fn()
	if err != nil {
		httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, v)
}

func (s *Server) handleForget(w http.ResponseWriter, r *http.Request) {
	lbl := label(r)
	telAdminReqs.Inc()
	if !s.enter(w) {
		return
	}
	defer s.wg.Done()
	res := s.store.Forget(lbl)
	if !res.Found {
		httpError(w, http.StatusNotFound, "no backup %q", lbl)
		return
	}
	writeJSON(w, http.StatusOK, struct {
		Forgotten string `json:"forgotten"`
		repro.ForgetResult
	}{lbl, res})
}

// handleMaintenance runs one maintenance epoch (reverse remap + container
// merge) and returns its statistics. Safe under live traffic.
func (s *Server) handleMaintenance(w http.ResponseWriter, r *http.Request) {
	s.admin(w, func() (any, error) {
		st, err := s.store.MaintenanceEpoch(r.Context())
		if err != nil {
			return nil, err
		}
		return st, nil
	})
}

func (s *Server) handleCompact(w http.ResponseWriter, r *http.Request) {
	threshold := 0.5
	if t := r.URL.Query().Get("threshold"); t != "" {
		v, err := strconv.ParseFloat(t, 64)
		if err != nil || v <= 0 || v > 1 {
			httpError(w, http.StatusBadRequest, "bad threshold %q", t)
			return
		}
		threshold = v
	}
	s.admin(w, func() (any, error) {
		return s.store.Compact(context.Background(), threshold)
	})
}

func verifyParam(r *http.Request) bool {
	v := r.URL.Query().Get("verify")
	return v == "1" || v == "true"
}

func (s *Server) handleCheck(w http.ResponseWriter, r *http.Request) {
	verify := verifyParam(r)
	s.admin(w, func() (any, error) {
		return s.store.Check(context.Background(), verify)
	})
}

func (s *Server) handleRepair(w http.ResponseWriter, r *http.Request) {
	verify := verifyParam(r)
	s.admin(w, func() (any, error) {
		return s.store.Repair(context.Background(), verify)
	})
}

// StatsView is the /v1/stats response. Stages is the always-on per-stage
// cumulative wall time of the pipeline (nanoseconds, process-wide) — the
// loadgen sweep diffs it across phases to attribute time; SLO is the
// per-tenant SLI/SLO summary.
type StatsView struct {
	Engine        string           `json:"engine"`
	Backend       string           `json:"backend"`
	Storage       repro.StoreStats `json:"storage"`
	Backups       int              `json:"backups"`
	SimulatedSecs float64          `json:"simulatedSeconds"`
	Draining      bool             `json:"draining"`
	Tenants       map[string]int   `json:"tenantsInflight"`
	Stages        map[string]int64 `json:"stageNanos"`
	SLO           SLOView          `json:"slo"`
	// RestoreCache is the shared sealed-container data cache (nil when no
	// cache budget is configured): concurrent restores single-flight their
	// container fetches through it.
	RestoreCache *repro.RestoreCacheStats `json:"restoreCache,omitempty"`
	// Maintenance is the online maintenance layer's cumulative counters
	// plus the store's current dead-byte accounting.
	Maintenance repro.MaintenanceReport `json:"maintenance"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	telAdminReqs.Inc()
	view := StatsView{
		Engine:        s.store.Engine(),
		Backend:       s.store.BackendName(),
		Storage:       s.store.Stats(),
		Backups:       len(s.store.Backups()),
		SimulatedSecs: s.store.SimulatedTime().Seconds(),
		Draining:      s.Draining(),
		Tenants:       s.limits.snapshot(),
		Stages:        telemetry.StageTotals(),
		SLO:           s.slo.View(),
	}
	if cs, ok := s.store.RestoreCacheStats(); ok {
		view.RestoreCache = &cs
	}
	view.Maintenance = s.store.MaintenanceReport()
	writeJSON(w, http.StatusOK, view)
}
