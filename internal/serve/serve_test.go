package serve

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"repro"
	"repro/internal/workload"
)

// newTestServer opens a store and wraps it in an httptest server. The
// returned cleanup shuts both down.
func newTestServer(t *testing.T, opts repro.Options, cfg Config) (*repro.Store, *Server, *httptest.Server) {
	t.Helper()
	if opts.ExpectedBytes == 0 {
		opts.ExpectedBytes = 64 << 20
	}
	store, err := repro.Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close() }) //nolint:errcheck // test teardown
	cfg.Store = store
	srv := New(cfg)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return store, srv, ts
}

// tenantStream returns one generation's bytes for a seeded tenant workload.
func tenantStreams(t *testing.T, seed int64, gens int) [][]byte {
	t.Helper()
	cfg := workload.DefaultConfig(seed)
	cfg.NumFiles = 4
	cfg.MeanFileSize = 64 << 10
	sched, err := workload.NewSingle(cfg)
	if err != nil {
		t.Fatal(err)
	}
	out := make([][]byte, gens)
	for g := range out {
		data, err := io.ReadAll(sched.Next().Stream)
		if err != nil {
			t.Fatal(err)
		}
		out[g] = data
	}
	return out
}

func upload(t *testing.T, base, tenant, label string, data []byte) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, base+"/v1/backups/"+label, bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Tenant", tenant)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestServeMultiTenantRoundTrip uploads several tenants concurrently over
// HTTP and restores every backup in every mode, requiring bit-identical
// content and a clean fsck.
func TestServeMultiTenantRoundTrip(t *testing.T) {
	_, _, ts := newTestServer(t,
		repro.Options{Engine: repro.DeFrag, Alpha: 0.1, StoreData: true},
		Config{MaxTenantInflight: 2, MaxTotalInflight: 16})

	const tenants, gens = 4, 2
	streams := make([][][]byte, tenants)
	for tn := range streams {
		streams[tn] = tenantStreams(t, int64(1000+tn), gens)
	}

	var wg sync.WaitGroup
	errs := make(chan error, tenants*gens)
	for tn := 0; tn < tenants; tn++ {
		wg.Add(1)
		go func(tn int) {
			defer wg.Done()
			for g := 0; g < gens; g++ {
				label := fmt.Sprintf("t%d/g%02d", tn, g)
				resp := upload(t, ts.URL, fmt.Sprintf("t%d", tn), label, streams[tn][g])
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close() //nolint:errcheck // read fully
				if resp.StatusCode != http.StatusCreated {
					errs <- fmt.Errorf("%s: %s: %s", label, resp.Status, body)
				}
			}
		}(tn)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Every backup, every restore mode, bit-identical.
	for tn := 0; tn < tenants; tn++ {
		for g := 0; g < gens; g++ {
			label := fmt.Sprintf("t%d/g%02d", tn, g)
			want := sha256.Sum256(streams[tn][g])
			for _, mode := range []string{"lru", "opt", "pipelined", "faa"} {
				resp, err := http.Get(fmt.Sprintf("%s/v1/backups/%s/restore?mode=%s&verify=1", ts.URL, label, mode))
				if err != nil {
					t.Fatal(err)
				}
				got, err := io.ReadAll(resp.Body)
				resp.Body.Close() //nolint:errcheck // read fully
				if err != nil {
					t.Fatal(err)
				}
				if resp.StatusCode != http.StatusOK {
					t.Fatalf("restore %s mode=%s: %s: %s", label, mode, resp.Status, got)
				}
				if sha256.Sum256(got) != want {
					t.Fatalf("restore %s mode=%s: content diverged (%d bytes)", label, mode, len(got))
				}
			}
		}
	}

	// List sees all backups; stats is coherent; fsck is clean.
	resp, err := http.Get(ts.URL + "/v1/backups")
	if err != nil {
		t.Fatal(err)
	}
	list, _ := io.ReadAll(resp.Body)
	resp.Body.Close() //nolint:errcheck // read fully
	if n := bytes.Count(list, []byte(`"label"`)); n != tenants*gens {
		t.Fatalf("list has %d backups, want %d: %s", n, tenants*gens, list)
	}
	resp, err = http.Post(ts.URL+"/v1/check?verify=1", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close() //nolint:errcheck // read fully
	if resp.StatusCode != http.StatusOK || bytes.Contains(body, []byte(`"Problems":[`)) {
		t.Fatalf("check: %s: %s", resp.Status, body)
	}
}

func TestServeForgetAndErrors(t *testing.T) {
	_, _, ts := newTestServer(t,
		repro.Options{Engine: repro.DeFrag, Alpha: 0.1, StoreData: true},
		Config{})
	data := tenantStreams(t, 7, 1)[0]
	resp := upload(t, ts.URL, "t0", "t0/g00", data)
	resp.Body.Close() //nolint:errcheck // status only
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("upload: %s", resp.Status)
	}

	// Restore of a missing label is 404; bad mode is 400.
	for _, tc := range []struct {
		url  string
		want int
	}{
		{"/v1/backups/absent/restore", http.StatusNotFound},
		{"/v1/backups/t0/g00/restore?mode=bogus", http.StatusBadRequest},
		{"/v1/backups/t0/g00/restore?workers=-1", http.StatusBadRequest},
		{"/v1/backups/absent", http.StatusNotFound},
		{"/v1/backups/t0/g00", http.StatusOK},
	} {
		resp, err := http.Get(ts.URL + tc.url)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close() //nolint:errcheck // status only
		if resp.StatusCode != tc.want {
			t.Errorf("GET %s: got %d, want %d", tc.url, resp.StatusCode, tc.want)
		}
	}

	// Forget drops the backup; a second forget fails.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/backups/t0/g00", nil)
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close() //nolint:errcheck // status only
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("forget: %s", resp2.Status)
	}
	resp3, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close() //nolint:errcheck // status only
	if resp3.StatusCode == http.StatusOK {
		t.Fatal("second forget of the same label must fail")
	}

	// A label ending in the reserved /restore suffix is rejected at ingest.
	resp4 := upload(t, ts.URL, "t0", "weird/restore", data)
	resp4.Body.Close() //nolint:errcheck // status only
	if resp4.StatusCode != http.StatusBadRequest {
		t.Fatalf("reserved-suffix label: got %s, want 400", resp4.Status)
	}
}
