package serve

import (
	"sort"
	"sync"
	"time"

	"repro/internal/telemetry"
)

// SLO definitions for the dedupd service (documented in DESIGN.md):
//
//   - Availability: fraction of non-throttled requests that do not fail
//     server-side. Errors are 5xx responses; 429 backpressure is the
//     protocol working as designed and never consumes error budget, and
//     4xx client errors are the caller's fault.
//   - Latency: request wall time tracked as a per-tenant histogram; the
//     /v1/stats view reports p50/p95/p99 against sloLatencyTarget.
//   - Error-budget burn rate: the windowed error rate divided by the
//     budget rate (1 - objective). Burn 1.0 = spending exactly the
//     sustainable budget; 14.4 = the classic "page now" threshold (a 30-day
//     budget gone in ~2 days).
const (
	sloAvailabilityObjective = 0.999
	sloLatencyTargetSeconds  = 2.0

	// Burn rate is measured over a rolling window of sloWindowBuckets
	// buckets of sloBucketSeconds each (60 s total by default): long enough
	// to smooth single hiccups, short enough to flag an active incident.
	sloBucketSeconds = 10
	sloWindowBuckets = 6
)

// sloBucket accumulates one 10-second slot of the rolling window.
type sloBucket struct {
	epoch int64 // unix time / sloBucketSeconds this slot holds
	reqs  int64
	errs  int64
}

// tenantSLO is one tenant's SLI state: cumulative counters and latency
// histogram on the telemetry registry (so they render on /metrics with
// tenant labels) plus the in-RAM rolling window behind the burn rate.
type tenantSLO struct {
	requests *telemetry.Counter
	errors   *telemetry.Counter
	throttle *telemetry.Counter
	latency  *telemetry.Histogram
	burn     *telemetry.Gauge

	window [sloWindowBuckets]sloBucket
}

// sloTracker tracks per-tenant SLIs. All methods are safe for concurrent
// use; Record is two map lookups, a few atomic adds, and one mutex-guarded
// window update — cheap enough for every request.
type sloTracker struct {
	mu      sync.Mutex
	tenants map[string]*tenantSLO
	now     func() time.Time // injectable clock for tests
}

func newSLOTracker() *sloTracker {
	return &sloTracker{tenants: make(map[string]*tenantSLO), now: time.Now}
}

func (t *sloTracker) tenant(name string) *tenantSLO {
	if s, ok := t.tenants[name]; ok {
		return s
	}
	reg := telemetry.Default()
	s := &tenantSLO{
		requests: reg.Counter(telemetry.Name("slo_requests_total", "tenant", name),
			"SLI: requests counted against the availability SLO, by tenant"),
		errors: reg.Counter(telemetry.Name("slo_errors_total", "tenant", name),
			"SLI: 5xx responses (error-budget spend), by tenant"),
		throttle: reg.Counter(telemetry.Name("slo_throttled_total", "tenant", name),
			"429 backpressure responses (excluded from the error budget), by tenant"),
		latency: reg.Histogram(telemetry.Name("slo_request_seconds", "tenant", name),
			"SLI: request wall time, by tenant", telemetry.DurationBuckets),
		burn: reg.Gauge(telemetry.Name("slo_error_budget_burn_rate", "tenant", name),
			"windowed error rate over budget rate (1.0 = sustainable spend), by tenant"),
	}
	t.tenants[name] = s
	return s
}

// Record folds one finished request into the tenant's SLIs. code is the
// HTTP status; dur the request wall time.
func (t *sloTracker) Record(tenantName string, code int, dur time.Duration) {
	t.mu.Lock()
	s := t.tenant(tenantName)
	epoch := t.now().Unix() / sloBucketSeconds
	b := &s.window[epoch%sloWindowBuckets]
	if b.epoch != epoch {
		b.epoch, b.reqs, b.errs = epoch, 0, 0
	}
	isErr := code >= 500
	if code == 429 {
		// Backpressure: counted separately, no budget spend.
		s.throttle.Inc()
	} else {
		b.reqs++
		if isErr {
			b.errs++
		}
	}
	s.burn.Set(s.burnRateLocked(epoch))
	t.mu.Unlock()

	if code != 429 {
		s.requests.Inc()
		if isErr {
			s.errors.Inc()
		}
	}
	s.latency.Observe(dur.Seconds())
}

// burnRateLocked computes the rolling-window burn rate. Caller holds t.mu.
func (s *tenantSLO) burnRateLocked(epoch int64) float64 {
	var reqs, errs int64
	for i := range s.window {
		if b := &s.window[i]; epoch-b.epoch < sloWindowBuckets {
			reqs += b.reqs
			errs += b.errs
		}
	}
	if reqs == 0 {
		return 0
	}
	return (float64(errs) / float64(reqs)) / (1 - sloAvailabilityObjective)
}

// TenantSLOView is one tenant's SLI/SLO summary on /v1/stats.
type TenantSLOView struct {
	Requests     int64   `json:"requests"`
	Errors       int64   `json:"errors"`
	Throttled    int64   `json:"throttled"`
	Availability float64 `json:"availability"`
	// ErrorBudgetRemaining is the fraction of the cumulative error budget
	// still unspent (1 = untouched, 0 = exhausted, negative = blown).
	ErrorBudgetRemaining float64 `json:"errorBudgetRemaining"`
	// BurnRate is the rolling-window budget spend rate (1.0 = sustainable).
	BurnRate   float64 `json:"burnRate"`
	LatencyP50 float64 `json:"latencyP50Seconds"`
	LatencyP95 float64 `json:"latencyP95Seconds"`
	LatencyP99 float64 `json:"latencyP99Seconds"`
}

// SLOView is the /v1/stats slo section.
type SLOView struct {
	AvailabilityObjective float64                  `json:"availabilityObjective"`
	LatencyTargetSeconds  float64                  `json:"latencyTargetSeconds"`
	Tenants               map[string]TenantSLOView `json:"tenants"`
}

// View snapshots every tenant's SLIs.
func (t *sloTracker) View() SLOView {
	t.mu.Lock()
	defer t.mu.Unlock()
	epoch := t.now().Unix() / sloBucketSeconds
	out := SLOView{
		AvailabilityObjective: sloAvailabilityObjective,
		LatencyTargetSeconds:  sloLatencyTargetSeconds,
		Tenants:               make(map[string]TenantSLOView, len(t.tenants)),
	}
	names := make([]string, 0, len(t.tenants))
	for name := range t.tenants {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		s := t.tenants[name]
		reqs, errs := s.requests.Value(), s.errors.Value()
		v := TenantSLOView{
			Requests:     reqs,
			Errors:       errs,
			Throttled:    s.throttle.Value(),
			Availability: 1,
			BurnRate:     s.burnRateLocked(epoch),
		}
		if reqs > 0 {
			v.Availability = 1 - float64(errs)/float64(reqs)
			budget := float64(reqs) * (1 - sloAvailabilityObjective)
			v.ErrorBudgetRemaining = 1 - float64(errs)/budget
		} else {
			v.ErrorBudgetRemaining = 1
		}
		lat := s.latency.Snapshot()
		v.LatencyP50 = lat.Quantile(0.50)
		v.LatencyP95 = lat.Quantile(0.95)
		v.LatencyP99 = lat.Quantile(0.99)
		out.Tenants[name] = v
	}
	return out
}
