package telemetry

import (
	"fmt"
	"os"
)

// Endpoint bundles the optional live observability surface a CLI enables
// via its -telemetry.addr / -telemetry.events flags: the HTTP server on the
// Default registry and a JSONL span-event sink file. Either part may be
// absent (empty string).
type Endpoint struct {
	srv    *Server
	events *os.File
}

// StartEndpoint starts the HTTP endpoint on addr (empty: no server) and
// directs span events to eventsPath (empty: no sink; the file is truncated).
func StartEndpoint(addr, eventsPath string) (*Endpoint, error) {
	ep := &Endpoint{}
	if eventsPath != "" {
		f, err := os.Create(eventsPath)
		if err != nil {
			return nil, fmt.Errorf("telemetry: events sink: %w", err)
		}
		ep.events = f
		SetSink(f)
	}
	if addr != "" {
		srv, err := ListenAndServe(addr)
		if err != nil {
			ep.Close()
			return nil, err
		}
		ep.srv = srv
	}
	return ep, nil
}

// Addr returns the bound HTTP address, or "" when no server was requested.
func (e *Endpoint) Addr() string {
	if e.srv == nil {
		return ""
	}
	return e.srv.Addr()
}

// Close stops the server (if any) and detaches and closes the event sink.
func (e *Endpoint) Close() error {
	var first error
	if e.srv != nil {
		first = e.srv.Close()
		e.srv = nil
	}
	if e.events != nil {
		SetSink(nil)
		if err := e.events.Close(); err != nil && first == nil {
			first = err
		}
		e.events = nil
	}
	return first
}
