package telemetry

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Handler returns the registry's HTTP surface:
//
//	/metrics         Prometheus text exposition format (runtime metrics refreshed per scrape)
//	/debug/snapshot  the full instrument Snapshot as JSON
//	/debug/traces    tail-captured slow/errored request span trees as JSON
//	/debug/pprof/*   the standard net/http/pprof profiles
func (r *Registry) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		r.CollectRuntime()
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
	mux.HandleFunc("/debug/snapshot", func(w http.ResponseWriter, _ *http.Request) {
		r.CollectRuntime()
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(r.Snapshot())
	})
	mux.HandleFunc("/debug/traces", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(r.Traces())
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		fmt.Fprintln(w, "telemetry endpoint — routes: /metrics /debug/snapshot /debug/traces /debug/pprof/")
	})
	return mux
}

// Server is a running telemetry HTTP endpoint.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// ListenAndServe starts serving the Default registry on addr (e.g.
// "127.0.0.1:9090"; ":0" picks a free port — see Addr). It returns once the
// listener is bound; serving continues in a background goroutine.
func ListenAndServe(addr string) (*Server, error) { return std.ListenAndServe(addr) }

// ListenAndServe starts serving this registry on addr.
func (r *Registry) ListenAndServe(addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	s := &Server{
		ln:  ln,
		srv: &http.Server{Handler: r.Handler(), ReadHeaderTimeout: 5 * time.Second},
	}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Addr returns the bound address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server and releases the listener.
func (s *Server) Close() error { return s.srv.Close() }
