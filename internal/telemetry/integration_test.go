package telemetry_test

// Integration test: drives the real DeFrag engine through the root Store
// API and checks that the live instruments agree with the engine's own
// bookkeeping — in particular that every chunk received exactly one
// dedup/rewrite/unique placement decision (the invariant behind the
// defrag_decision_total family) and that the /metrics endpoint exposes the
// metric families the paper's figures are read from.

import (
	"context"
	"io"
	"net/http"
	"strings"
	"testing"

	"repro"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

func runDefragBackups(t *testing.T, gens int) int64 {
	t.Helper()
	store, err := repro.Open(repro.Options{Engine: repro.DeFrag, Alpha: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	cfg := workload.DefaultConfig(7)
	cfg.NumFiles = 16
	cfg.MeanFileSize = 64 << 10
	sched, err := workload.NewSingle(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var chunks int64
	for g := 0; g < gens; g++ {
		bk := sched.Next()
		b, err := store.Backup(context.Background(), bk.Label, bk.Stream)
		if err != nil {
			t.Fatal(err)
		}
		chunks += int64(b.Stats.Chunks)
		if _, err := store.Restore(context.Background(), b, nil, false); err != nil {
			t.Fatal(err)
		}
	}
	return chunks
}

func TestDecisionCountersSumToChunks(t *testing.T) {
	telemetry.Default().Reset()
	chunks := runDefragBackups(t, 5)
	if chunks == 0 {
		t.Fatal("workload produced no chunks")
	}
	snap := telemetry.Default().Snapshot()
	processed := snap.Counters["dedup_chunks_processed_total"]
	if processed != chunks {
		t.Errorf("dedup_chunks_processed_total = %d, engine reported %d chunks", processed, chunks)
	}
	var decisions int64
	for _, d := range []string{"dedup", "rewrite", "unique", "spill"} {
		decisions += snap.Counters[telemetry.Name("defrag_decision_total", "decision", d)]
	}
	if decisions != chunks {
		t.Errorf("decision counters sum to %d, want %d (every chunk gets exactly one SPL decision)", decisions, chunks)
	}
	if snap.Counters["restore_container_reads_total"] == 0 {
		t.Error("restores recorded no container reads")
	}
	if h, ok := snap.Histograms["defrag_spl_ratio"]; !ok || h.Count == 0 {
		t.Error("SPL histogram not populated")
	}
}

func TestMetricsEndpointServesEngineFamilies(t *testing.T) {
	telemetry.Default().Reset()
	runDefragBackups(t, 3)

	srv, err := telemetry.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + srv.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	// The acceptance list from the issue: chunk counters, decision
	// counters, SPL histogram, cache hit/miss, container reads, span
	// durations.
	for _, family := range []string{
		"dedup_chunks_processed_total",
		`defrag_decision_total{decision="dedup"}`,
		"defrag_spl_ratio_bucket",
		"restore_cache_hits_total",
		"restore_cache_misses_total",
		"restore_container_reads_total",
		"container_data_reads_total",
		"telemetry_span_seconds_bucket",
	} {
		if !strings.Contains(text, family) {
			t.Errorf("/metrics missing %s", family)
		}
	}
	if !strings.Contains(text, "# TYPE dedup_chunks_processed_total counter") {
		t.Error("/metrics missing TYPE line for chunk counter")
	}
}
