package telemetry

import (
	"context"
	"io"
	"log/slog"
	"os"
	"sync/atomic"
)

// Structured logging: one leveled JSON logger per process (stdlib
// log/slog), trace-correlated — Log(ctx) stamps every record produced
// under a traced request with its trace and span IDs, so a log line, a
// /debug/traces tree and a loadgen op record can be joined on one key.
// This replaces the ad-hoc fmt.Fprintf(os.Stderr, ...) reporting in the
// CLIs and the HTTP layer.

var (
	logLevel  slog.LevelVar // defaults to Info
	logTarget atomic.Pointer[slog.Logger]
)

func init() {
	logTarget.Store(slog.New(slog.NewJSONHandler(os.Stderr, &slog.HandlerOptions{Level: &logLevel})))
}

// Logger returns the process logger.
func Logger() *slog.Logger { return logTarget.Load() }

// Log returns the process logger, annotated with the trace and span IDs of
// ctx's innermost span when there is one.
func Log(ctx context.Context) *slog.Logger {
	l := Logger()
	if s := SpanFromContext(ctx); s != nil {
		return l.With("trace", s.Trace().String(), "span", s.ID().String())
	}
	if t, ok := TraceFromContext(ctx); ok {
		return l.With("trace", t.String())
	}
	return l
}

// SetLogLevel adjusts the process log level (the handler is leveled; no
// logger is rebuilt).
func SetLogLevel(l slog.Level) { logLevel.Set(l) }

// ParseLogLevel maps the conventional flag spellings to slog levels,
// defaulting to Info for unknown input.
func ParseLogLevel(s string) slog.Level {
	switch s {
	case "debug":
		return slog.LevelDebug
	case "warn", "warning":
		return slog.LevelWarn
	case "error":
		return slog.LevelError
	default:
		return slog.LevelInfo
	}
}

// SetLogOutput redirects the process logger to w (tests; a JSON handler at
// the current level is installed over w).
func SetLogOutput(w io.Writer) {
	logTarget.Store(slog.New(slog.NewJSONHandler(w, &slog.HandlerOptions{Level: &logLevel})))
}
