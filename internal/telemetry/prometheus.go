package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders every instrument in Prometheus text exposition
// format (version 0.0.4): families sorted by name, one # HELP / # TYPE pair
// per family, histogram series expanded into cumulative _bucket/_sum/_count
// lines with the `le` label merged after any series labels.
func (r *Registry) WritePrometheus(w io.Writer) error {
	snap := r.Snapshot()
	r.mu.RLock()
	help := make(map[string]string, len(r.help))
	for k, v := range r.help {
		help[k] = v
	}
	r.mu.RUnlock()

	type family struct {
		base  string
		kind  string
		lines []string
	}
	families := make(map[string]*family)
	add := func(name, kind string, emit func(f *family, labels string)) {
		base, labels := splitName(name)
		f, ok := families[base]
		if !ok {
			f = &family{base: base, kind: kind}
			families[base] = f
		}
		emit(f, labels)
	}

	for name, v := range snap.Counters {
		v := v
		add(name, "counter", func(f *family, labels string) {
			f.lines = append(f.lines, fmt.Sprintf("%s %d", series(f.base, labels), v))
		})
	}
	for name, v := range snap.Gauges {
		v := v
		add(name, "gauge", func(f *family, labels string) {
			f.lines = append(f.lines, fmt.Sprintf("%s %s", series(f.base, labels), formatFloat(v)))
		})
	}
	for name, h := range snap.Histograms {
		h := h
		add(name, "histogram", func(f *family, labels string) {
			var cum int64
			for i, n := range h.Counts {
				cum += n
				le := "+Inf"
				if i < len(h.Bounds) {
					le = formatFloat(h.Bounds[i])
				}
				f.lines = append(f.lines, fmt.Sprintf("%s %d",
					series(f.base+"_bucket", joinLabels(labels, fmt.Sprintf("le=%q", le))), cum))
			}
			f.lines = append(f.lines,
				fmt.Sprintf("%s %s", series(f.base+"_sum", labels), formatFloat(h.Sum)),
				fmt.Sprintf("%s %d", series(f.base+"_count", labels), h.Count))
		})
	}

	bases := make([]string, 0, len(families))
	for b := range families {
		bases = append(bases, b)
	}
	sort.Strings(bases)
	for _, b := range bases {
		f := families[b]
		if h := help[b]; h != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", b, h); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", b, f.kind); err != nil {
			return err
		}
		sort.Strings(f.lines)
		for _, line := range f.lines {
			if _, err := fmt.Fprintln(w, line); err != nil {
				return err
			}
		}
	}
	return nil
}

// series renders a full series name from base and a brace-less label body.
func series(base, labels string) string {
	if labels == "" {
		return base
	}
	return base + "{" + labels + "}"
}

// joinLabels merges non-empty label bodies with commas.
func joinLabels(parts ...string) string {
	nonEmpty := parts[:0]
	for _, p := range parts {
		if p != "" {
			nonEmpty = append(nonEmpty, p)
		}
	}
	return strings.Join(nonEmpty, ",")
}

// formatFloat renders a float the way Prometheus clients expect (shortest
// round-trip representation).
func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
