package telemetry

import (
	"runtime"
	"runtime/debug"
	"sync"
)

// Go runtime metrics, collected on scrape (not on a timer): goroutine
// count, heap bytes, GC pause distribution, GOMAXPROCS and a build_info
// gauge. CollectRuntime is called by the /metrics and /debug/snapshot
// handlers right before rendering, so the exported values are as fresh as
// the scrape without any background goroutine.

type runtimeCollector struct {
	mu        sync.Mutex
	lastNumGC uint32
}

var rtc runtimeCollector

// CollectRuntime refreshes the registry's Go runtime instruments:
//
//	go_goroutines            gauge   current goroutine count
//	go_heap_alloc_bytes      gauge   live heap bytes (MemStats.HeapAlloc)
//	go_heap_sys_bytes        gauge   heap memory obtained from the OS
//	go_gomaxprocs            gauge   scheduler parallelism
//	go_gc_cycles             gauge   completed GC cycles
//	go_gc_pause_seconds      histogram  stop-the-world pause durations
//	build_info{...}          gauge 1  Go version and module path labels
func (r *Registry) CollectRuntime() {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)

	r.Gauge("go_goroutines", "current number of goroutines").
		Set(float64(runtime.NumGoroutine()))
	r.Gauge("go_heap_alloc_bytes", "bytes of allocated heap objects").
		Set(float64(ms.HeapAlloc))
	r.Gauge("go_heap_sys_bytes", "heap memory obtained from the OS").
		Set(float64(ms.HeapSys))
	r.Gauge("go_gomaxprocs", "GOMAXPROCS at scrape time").
		Set(float64(runtime.GOMAXPROCS(0)))
	r.Gauge("go_gc_cycles", "completed GC cycles").
		Set(float64(ms.NumGC))

	// New GC pauses since the previous scrape land in the pause histogram.
	// MemStats keeps the last 256 pauses in a ring; a scrape gap longer
	// than 256 cycles loses the overwritten ones (harmless for a trend
	// histogram).
	pauses := r.Histogram("go_gc_pause_seconds",
		"garbage-collector stop-the-world pause durations", DurationBuckets)
	rtc.mu.Lock()
	last := rtc.lastNumGC
	if ms.NumGC > last {
		lo := last
		if ms.NumGC-lo > 256 {
			lo = ms.NumGC - 256
		}
		for i := lo; i < ms.NumGC; i++ {
			pauses.Observe(float64(ms.PauseNs[i%256]) / 1e9)
		}
		rtc.lastNumGC = ms.NumGC
	}
	rtc.mu.Unlock()

	r.Gauge(Name("build_info",
		"go_version", runtime.Version(),
		"module", modulePath(),
	), "build metadata as labels, value fixed at 1").Set(1)
}

var moduleOnce = sync.OnceValue(func() string {
	if bi, ok := debug.ReadBuildInfo(); ok && bi.Main.Path != "" {
		return bi.Main.Path
	}
	return "unknown"
})

func modulePath() string { return moduleOnce() }
