package telemetry

import (
	"context"
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Span is one timed phase of the pipeline. Ending a span observes its wall
// duration into the `telemetry_span_seconds{span=...}` histogram, its
// simulated-clock duration (when set) into `telemetry_span_sim_seconds`,
// and emits one JSONL event to the registry's sink when one is attached.
//
// A Span is owned by the goroutine that started it; End must be called
// exactly once. Spans started from a context carrying another span record
// it as their parent, so sink events reconstruct the phase tree.
type Span struct {
	reg    *Registry
	name   string
	id     uint64
	parent uint64
	start  time.Time
	sim    time.Duration
	simSet bool
	ended  bool
}

type spanCtxKey struct{}

// StartSpan starts a span on the Default registry. The returned context
// carries the span, parenting any spans started from it.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	return std.StartSpan(ctx, name)
}

// StartSpan starts a named span, recording the span in ctx's lineage.
func (r *Registry) StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	s := &Span{
		reg:   r,
		name:  name,
		id:    r.spanID.Add(1),
		start: time.Now(),
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if parent, ok := ctx.Value(spanCtxKey{}).(*Span); ok {
		s.parent = parent.id
	}
	return context.WithValue(ctx, spanCtxKey{}, s), s
}

// SpanFromContext returns the innermost span carried by ctx, or nil.
func SpanFromContext(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	s, _ := ctx.Value(spanCtxKey{}).(*Span)
	return s
}

// SetSim attaches the simulated-clock duration of the spanned phase (the
// disk-model time the phase consumed, as opposed to the wall time the
// simulation took to compute it).
func (s *Span) SetSim(d time.Duration) {
	s.sim = d
	s.simSet = true
}

// Name returns the span name.
func (s *Span) Name() string { return s.name }

// End closes the span: wall (and, if set, simulated) duration are observed
// into the per-span-name histograms and an event goes to the sink. A second
// End is a no-op.
func (s *Span) End() {
	if s == nil || s.ended {
		return
	}
	s.ended = true
	wall := time.Since(s.start)
	s.reg.Histogram(
		Name("telemetry_span_seconds", "span", s.name),
		"wall-clock duration of pipeline phases, by span name",
		DurationBuckets,
	).ObserveDuration(wall)
	if s.simSet {
		s.reg.Histogram(
			Name("telemetry_span_sim_seconds", "span", s.name),
			"simulated-clock duration of pipeline phases, by span name",
			DurationBuckets,
		).ObserveDuration(s.sim)
	}
	s.reg.emitSpan(s, wall)
}

// spanEvent is one JSONL record of the event sink.
type spanEvent struct {
	Type    string `json:"type"`
	Span    string `json:"span"`
	ID      uint64 `json:"id"`
	Parent  uint64 `json:"parent,omitempty"`
	StartNS int64  `json:"start_unix_ns"`
	WallNS  int64  `json:"wall_ns"`
	SimNS   int64  `json:"sim_ns,omitempty"`
}

// eventSink serializes JSONL writes from concurrent span ends.
type eventSink struct {
	mu  sync.Mutex
	enc *json.Encoder
}

// SetSink directs structured span events to w as JSONL (one object per
// line). Pass nil to detach. The registry serializes writes; w need not be
// safe for concurrent use.
func (r *Registry) SetSink(w io.Writer) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if w == nil {
		r.sink = nil
		return
	}
	r.sink = &eventSink{enc: json.NewEncoder(w)}
}

// SetSink directs the Default registry's span events to w.
func SetSink(w io.Writer) { std.SetSink(w) }

func (r *Registry) emitSpan(s *Span, wall time.Duration) {
	r.mu.RLock()
	sink := r.sink
	r.mu.RUnlock()
	if sink == nil {
		return
	}
	ev := spanEvent{
		Type:    "span",
		Span:    s.name,
		ID:      s.id,
		Parent:  s.parent,
		StartNS: s.start.UnixNano(),
		WallNS:  int64(wall),
	}
	if s.simSet {
		ev.SimNS = int64(s.sim)
	}
	sink.mu.Lock()
	defer sink.mu.Unlock()
	_ = sink.enc.Encode(ev) // best-effort: a failing sink must not break the pipeline
}
