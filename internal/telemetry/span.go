package telemetry

import (
	"context"
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Span is one timed phase of the pipeline, a node of a request's trace
// tree: it carries the trace ID of the request it serves, its own random
// span ID, and its parent's span ID (zero for a root). Ending a span
// observes its wall duration into the `telemetry_span_seconds{span=...}`
// histogram, its simulated-clock duration (when set) into
// `telemetry_span_sim_seconds`, emits one JSONL event to the registry's
// sink when one is attached, and records the span into the registry's
// tail-capture buffer so slow or errored request trees survive for
// /debug/traces.
//
// A Span is owned by the goroutine that started it; attributes and errors
// must be set before End, and End must be called exactly once. Spans
// started from a context carrying another span join its trace with that
// span as parent; a context carrying a remote parent (a client's
// traceparent, see ContextWithRemoteParent) starts a local root of the
// remote trace.
type Span struct {
	reg    *Registry
	name   string
	trace  TraceID
	id     SpanID
	parent SpanID
	root   bool // local root: finalizes the trace's tail capture on End
	start  time.Time
	sim    time.Duration
	simSet bool
	ended  bool
	attrs  []Attr
	errMsg string
}

// Attr is one key/value annotation on a span.
type Attr struct {
	Key   string `json:"key"`
	Value any    `json:"value"`
}

type spanCtxKey struct{}

// tracingOn gates the span layer (StartSpan returns a no-op nil span when
// false). The per-stage nanosecond counters (stage.go) are not gated — they
// are the always-on layer.
var tracingOn atomic.Bool

func init() { tracingOn.Store(true) }

// SetTracing enables or disables span tracing process-wide (the overhead
// kill switch; see the tracing-overhead guard test). Returns the previous
// setting.
func SetTracing(on bool) bool { return tracingOn.Swap(on) }

// TracingEnabled reports whether span tracing is on.
func TracingEnabled() bool { return tracingOn.Load() }

// StartSpan starts a span on the Default registry. The returned context
// carries the span, parenting any spans started from it.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	return std.StartSpan(ctx, name)
}

// StartSpan starts a named span, recording the span in ctx's lineage. With
// tracing disabled it returns ctx unchanged and a nil span (all Span
// methods are nil-safe no-ops).
func (r *Registry) StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	if ctx == nil {
		ctx = context.Background()
	}
	if !tracingOn.Load() {
		return ctx, nil
	}
	s := &Span{
		reg:   r,
		name:  name,
		id:    NewSpanID(),
		start: time.Now(),
	}
	switch {
	case ctxSpan(ctx) != nil:
		p := ctxSpan(ctx)
		s.trace = p.trace
		s.parent = p.id
	default:
		if rp, ok := ctx.Value(remoteParentKey{}).(remoteParent); ok {
			s.trace = rp.trace
			s.parent = rp.span
		} else {
			s.trace = NewTraceID()
		}
		s.root = true
	}
	return context.WithValue(ctx, spanCtxKey{}, s), s
}

func ctxSpan(ctx context.Context) *Span {
	s, _ := ctx.Value(spanCtxKey{}).(*Span)
	return s
}

// SpanFromContext returns the innermost span carried by ctx, or nil.
func SpanFromContext(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	return ctxSpan(ctx)
}

// Trace returns the trace ID this span belongs to (zero for a nil span).
func (s *Span) Trace() TraceID {
	if s == nil {
		return TraceID{}
	}
	return s.trace
}

// ID returns the span's own ID (zero for a nil span).
func (s *Span) ID() SpanID {
	if s == nil {
		return SpanID{}
	}
	return s.id
}

// SetSim attaches the simulated-clock duration of the spanned phase (the
// disk-model time the phase consumed, as opposed to the wall time the
// simulation took to compute it).
func (s *Span) SetSim(d time.Duration) {
	if s == nil {
		return
	}
	s.sim = d
	s.simSet = true
}

// SetAttr annotates the span. Must be called by the owning goroutine,
// before End.
func (s *Span) SetAttr(key string, value any) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
}

// SetError marks the span failed. Errored roots are always retained by the
// tail-capture buffer.
func (s *Span) SetError(err error) {
	if s == nil || err == nil {
		return
	}
	s.errMsg = err.Error()
}

// Name returns the span name ("" for a nil span).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// End closes the span: wall (and, if set, simulated) duration are observed
// into the per-span-name histograms, an event goes to the sink, and the
// span record lands in the tail-capture buffer (which, on a root span,
// decides whether the whole tree is retained). A second End is a no-op.
func (s *Span) End() {
	if s == nil || s.ended {
		return
	}
	s.ended = true
	wall := time.Since(s.start)
	s.reg.Histogram(
		Name("telemetry_span_seconds", "span", s.name),
		"wall-clock duration of pipeline phases, by span name",
		DurationBuckets,
	).ObserveDuration(wall)
	if s.simSet {
		s.reg.Histogram(
			Name("telemetry_span_sim_seconds", "span", s.name),
			"simulated-clock duration of pipeline phases, by span name",
			DurationBuckets,
		).ObserveDuration(s.sim)
	}
	rec := s.record(wall)
	s.reg.emitSpan(&rec)
	if tc := s.reg.tail; tc != nil {
		tc.add(rec, s.root)
	}
}

// record renders the span's exportable form.
func (s *Span) record(wall time.Duration) SpanRecord {
	rec := SpanRecord{
		Name:        s.name,
		Trace:       s.trace.String(),
		ID:          s.id.String(),
		StartUnixNS: s.start.UnixNano(),
		WallNS:      int64(wall),
		Err:         s.errMsg,
	}
	if !s.parent.IsZero() {
		rec.Parent = s.parent.String()
	}
	if s.simSet {
		rec.SimNS = int64(s.sim)
	}
	if len(s.attrs) > 0 {
		rec.Attrs = make(map[string]any, len(s.attrs))
		for _, a := range s.attrs {
			rec.Attrs[a.Key] = a.Value
		}
	}
	return rec
}

// SpanRecord is the exportable form of one finished span: the JSONL sink
// event and the node type of /debug/traces trees. IDs are hex as on the
// wire; Parent is empty for a trace's root span.
type SpanRecord struct {
	Name        string         `json:"span"`
	Trace       string         `json:"trace"`
	ID          string         `json:"id"`
	Parent      string         `json:"parent,omitempty"`
	StartUnixNS int64          `json:"start_unix_ns"`
	WallNS      int64          `json:"wall_ns"`
	SimNS       int64          `json:"sim_ns,omitempty"`
	Err         string         `json:"error,omitempty"`
	Attrs       map[string]any `json:"attrs,omitempty"`
}

// eventSink serializes JSONL writes from concurrent span ends.
type eventSink struct {
	mu  sync.Mutex
	enc *json.Encoder
}

// SetSink directs structured span events to w as JSONL (one object per
// line). Pass nil to detach. The registry serializes writes; w need not be
// safe for concurrent use.
func (r *Registry) SetSink(w io.Writer) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if w == nil {
		r.sink = nil
		return
	}
	r.sink = &eventSink{enc: json.NewEncoder(w)}
}

// SetSink directs the Default registry's span events to w.
func SetSink(w io.Writer) { std.SetSink(w) }

func (r *Registry) emitSpan(rec *SpanRecord) {
	r.mu.RLock()
	sink := r.sink
	r.mu.RUnlock()
	if sink == nil {
		return
	}
	sink.mu.Lock()
	defer sink.mu.Unlock()
	_ = sink.enc.Encode(rec) // best-effort: a failing sink must not break the pipeline
}
