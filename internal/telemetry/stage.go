package telemetry

import (
	"sort"
	"sync"
	"time"
)

// Per-stage pipeline timing: the always-on layer under the span tracer.
// Every hot pipeline stage (CDC chunking, SHA fingerprinting, index lookup,
// container sealing, backend I/O on ingest; container read, chunk decode,
// output copy on restore) owns a StageClock and charges the wall time it
// actually spends — two time.Now calls and two atomic adds per observation,
// cheap enough to leave on under -loadgen. The cumulative nanosecond
// counters answer the question flat throughput numbers cannot: which stage
// serializes a multi-stream run. Because they are wall-clock sums across
// all goroutines, a stage whose share does not shrink as streams are added
// is the serial bottleneck (see the BENCH_PR6 stage sweep).
//
// Counters surface as pipeline_stage_ns_total{stage=...} and
// pipeline_stage_ops_total{stage=...} on /metrics, and as a stage→ns map on
// dedupd's /v1/stats.

// StageClock accumulates the wall time spent in one named pipeline stage.
type StageClock struct {
	name string
	ns   *Counter
	ops  *Counter
}

var (
	stageMu  sync.Mutex
	stageSet = make(map[string]*StageClock)
)

// Stage returns (creating if needed) the named stage clock on the Default
// registry. Stage names are a small fixed vocabulary (see the package
// comment); the same name always returns the same clock.
func Stage(name string) *StageClock {
	stageMu.Lock()
	defer stageMu.Unlock()
	if s, ok := stageSet[name]; ok {
		return s
	}
	s := &StageClock{
		name: name,
		ns: NewCounter(Name("pipeline_stage_ns_total", "stage", name),
			"cumulative wall-clock nanoseconds spent in each pipeline stage, across all streams"),
		ops: NewCounter(Name("pipeline_stage_ops_total", "stage", name),
			"observations per pipeline stage"),
	}
	stageSet[name] = s
	return s
}

// Observe charges the wall time since start to the stage.
func (s *StageClock) Observe(start time.Time) {
	s.ns.Add(int64(time.Since(start)))
	s.ops.Inc()
}

// AddNS charges d nanoseconds measured by the caller (used where one timer
// brackets a batch and hands out per-stage slices).
func (s *StageClock) AddNS(d int64) {
	if d > 0 {
		s.ns.Add(d)
	}
	s.ops.Inc()
}

// TotalNS returns the stage's cumulative nanoseconds.
func (s *StageClock) TotalNS() int64 { return s.ns.Value() }

// StageTotals snapshots every registered stage's cumulative nanoseconds,
// keyed by stage name. This is the payload behind /v1/stats' "stages" map
// and the loadgen client's per-stage breakdown.
func StageTotals() map[string]int64 {
	stageMu.Lock()
	defer stageMu.Unlock()
	out := make(map[string]int64, len(stageSet))
	for name, s := range stageSet {
		out[name] = s.ns.Value()
	}
	return out
}

// StageNames returns the registered stage names, sorted.
func StageNames() []string {
	stageMu.Lock()
	defer stageMu.Unlock()
	out := make([]string, 0, len(stageSet))
	for name := range stageSet {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
