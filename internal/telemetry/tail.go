package telemetry

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Tail capture: full span trees are expensive to keep for every request, so
// the registry accumulates each live trace's spans in a bounded buffer and,
// when the trace's root span ends, keeps the tree only if the request is
// worth debugging — it errored, or its wall time sits at or above the
// running p99 of root latencies (plus an unconditional warm-up allowance so
// /debug/traces is never empty on a fresh process). Everything else is
// dropped on the spot. Retained trees live in a fixed ring; the newest
// evicts the oldest.

const (
	tailActiveCap   = 256 // live traces tracked at once; excess traces are not captured
	tailSpanCap     = 512 // spans kept per trace; later spans are dropped and the tree marked truncated
	tailRetainedCap = 32  // retained trees in the ring
	tailWarmup      = 4   // always retain the first N roots (p99 is meaningless until then)
)

// RetainedTrace is one kept request tree, the element type of /debug/traces.
type RetainedTrace struct {
	Trace     string       `json:"trace"`
	Root      string       `json:"root"`            // root span name
	WallNS    int64        `json:"wall_ns"`         // root wall duration
	Err       string       `json:"error,omitempty"` // root error, when failed
	Reason    string       `json:"reason"`          // "error", "slow" or "warmup"
	Truncated bool         `json:"truncated,omitempty"`
	Spans     []SpanRecord `json:"spans"` // all spans of the trace, end order; root last
}

type activeTrace struct {
	spans     []SpanRecord
	truncated bool
}

// tailCapture is created per Registry and synchronized by its own mutex:
// span End touches it once per span with short critical sections.
type tailCapture struct {
	mu       sync.Mutex
	active   map[string]*activeTrace
	retained []RetainedTrace
	next     int // ring cursor into retained
	kept     int // total roots retained since process start
	latency  *Histogram
}

func newTailCapture() *tailCapture {
	return &tailCapture{
		active: make(map[string]*activeTrace),
		latency: &Histogram{
			bounds: append([]float64(nil), DurationBuckets...),
			counts: make([]atomic.Int64, len(DurationBuckets)+1),
		},
	}
}

// add records one finished span. When the span is its trace's local root,
// the trace is finalized: retained or discarded.
func (t *tailCapture) add(rec SpanRecord, root bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	at, ok := t.active[rec.Trace]
	if !ok {
		at = &activeTrace{}
		if root {
			// Single-span trace (or tracking was shed): decide on the root
			// alone, no map entry needed.
		} else if len(t.active) >= tailActiveCap {
			return // over budget: stop tracking new traces
		} else {
			t.active[rec.Trace] = at
		}
	}
	if len(at.spans) >= tailSpanCap {
		at.truncated = true
	} else {
		at.spans = append(at.spans, rec)
	}
	if root {
		delete(t.active, rec.Trace)
		t.finish(rec, at)
	}
}

// finish applies the retention policy to a completed trace. Caller holds
// t.mu.
func (t *tailCapture) finish(root SpanRecord, at *activeTrace) {
	wall := time.Duration(root.WallNS).Seconds()
	threshold := t.latency.Snapshot().Quantile(0.99)
	t.latency.Observe(wall)
	var reason string
	switch {
	case root.Err != "":
		reason = "error"
	case t.kept < tailWarmup:
		reason = "warmup"
	case wall >= threshold:
		reason = "slow"
	default:
		return
	}
	rt := RetainedTrace{
		Trace:     root.Trace,
		Root:      root.Name,
		WallNS:    root.WallNS,
		Err:       root.Err,
		Reason:    reason,
		Truncated: at.truncated,
		Spans:     at.spans,
	}
	if len(t.retained) < tailRetainedCap {
		t.retained = append(t.retained, rt)
	} else {
		t.retained[t.next%tailRetainedCap] = rt
	}
	t.next++
	t.kept++
}

// TracesView is the /debug/traces JSON payload.
type TracesView struct {
	// SlowThresholdNS is the current retention threshold: the p99 of root
	// span wall durations observed so far.
	SlowThresholdNS int64 `json:"slow_threshold_ns"`
	// Kept counts roots retained since process start (the ring holds only
	// the newest tailRetainedCap of them).
	Kept int64 `json:"kept_total"`
	// Traces are the retained trees, oldest root start first.
	Traces []RetainedTrace `json:"traces"`
}

// ResetTraces clears the tail-capture state: live traces, the retained
// ring, and the root-latency histogram behind the p99 threshold (warmup
// retention starts over). Intended for tests and bench harnesses that need
// deterministic retention on a shared registry.
func (r *Registry) ResetTraces() {
	t := r.tail
	t.mu.Lock()
	defer t.mu.Unlock()
	t.active = make(map[string]*activeTrace)
	t.retained = nil
	t.next = 0
	t.kept = 0
	for i := range t.latency.counts {
		t.latency.counts[i].Store(0)
	}
	t.latency.count.Store(0)
	t.latency.sum.Store(0)
}

// Traces returns a copy of the retained request trees.
func (r *Registry) Traces() TracesView {
	t := r.tail
	t.mu.Lock()
	v := TracesView{
		SlowThresholdNS: int64(t.latency.Snapshot().Quantile(0.99) * float64(time.Second)),
		Kept:            int64(t.kept),
		Traces:          make([]RetainedTrace, len(t.retained)),
	}
	if len(t.retained) < tailRetainedCap {
		copy(v.Traces, t.retained)
	} else {
		for i := range t.retained {
			v.Traces[i] = t.retained[(t.next+i)%tailRetainedCap]
		}
	}
	t.mu.Unlock()
	sort.SliceStable(v.Traces, func(i, j int) bool {
		return rootStart(v.Traces[i]) < rootStart(v.Traces[j])
	})
	return v
}

func rootStart(rt RetainedTrace) int64 {
	if n := len(rt.Spans); n > 0 {
		return rt.Spans[n-1].StartUnixNS
	}
	return 0
}
