// Package telemetry is the runtime observability layer of the repository:
// a concurrency-safe instrument registry (atomic counters, gauges and
// fixed-bucket histograms with snapshot support), span-based tracing of the
// pipeline phases, and a live HTTP endpoint serving Prometheus text-format
// /metrics, a JSON /debug/snapshot and net/http/pprof handlers.
//
// Where internal/metrics renders *batch* experiment tables after a run,
// telemetry observes the ingest/restore hot paths *while* they run: every
// quantity the paper argues from — SPL distribution (Eq. 2), the rewrite
// vs. dedup decision at threshold α, cache hit rates behind the throughput
// decay of Fig. 2, and the container reads of the restore cost Eq. 1 — is
// exported under a stable metric name (see the catalog in README.md).
//
// Instruments live in a Registry; the package-level constructors register
// on the shared Default registry, which is what the instrumented packages
// (internal/engine, internal/core, internal/restore, internal/cindex,
// internal/container, internal/lru and the root Store API) use. All
// instrument operations are safe for concurrent use and lock-free on the
// hot path (a single atomic add per count, two per histogram observation).
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (negative n panics: counters are monotone).
func (c *Counter) Add(n int64) {
	if n < 0 {
		panic("telemetry: negative counter add")
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomic float64 that can move both ways.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds d (atomically, via CAS).
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket histogram with atomic per-bucket counts.
// Bucket i counts observations v <= bounds[i] (Prometheus `le` semantics);
// one extra overflow bucket catches v above the last bound.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1, last is +Inf
	sum    atomic.Uint64  // float64 bits
	count  atomic.Int64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// ObserveDuration records d in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Snapshot returns a point-in-time copy of the histogram state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: h.bounds, // immutable after construction
		Counts: make([]int64, len(h.counts)),
		Sum:    h.Sum(),
		Count:  h.Count(),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// HistogramSnapshot is the exportable state of a Histogram. Counts are
// per-bucket (not cumulative); Counts[len(Bounds)] is the overflow bucket.
type HistogramSnapshot struct {
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
	Sum    float64   `json:"sum"`
	Count  int64     `json:"count"`
}

// Mean returns Sum/Count (0 when empty).
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// Quantile estimates the q-th quantile (0 <= q <= 1) by linear
// interpolation within the containing bucket. The overflow bucket reports
// its lower bound (there is no upper edge to interpolate toward). Returns 0
// for an empty histogram.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	var cum float64
	for i, n := range s.Counts {
		next := cum + float64(n)
		if next >= rank && n > 0 {
			lo := 0.0
			if i > 0 {
				lo = s.Bounds[i-1]
			}
			if i >= len(s.Bounds) {
				return lo // overflow bucket
			}
			hi := s.Bounds[i]
			frac := 0.5
			if n > 0 {
				frac = (rank - cum) / float64(n)
			}
			return lo + (hi-lo)*frac
		}
		cum = next
	}
	if len(s.Bounds) > 0 {
		return s.Bounds[len(s.Bounds)-1]
	}
	return 0
}

// Standard bucket layouts.
var (
	// DurationBuckets spans 1µs..10s in decades — both real wall time of
	// pipeline phases and simulated-disk phase times land in this range.
	DurationBuckets = []float64{1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1, 10}
	// SizeBuckets spans 512B..8MiB in powers of four: chunk sizes
	// (KiB-scale) through container data sections (4 MiB).
	SizeBuckets = []float64{512, 2048, 8192, 32768, 131072, 524288, 2097152, 8388608}
	// RatioBuckets covers [0,1] quantities such as the SPL of paper Eq. 2,
	// dense near the paper's α = 0.1 decision region.
	RatioBuckets = []float64{0.01, 0.02, 0.05, 0.1, 0.15, 0.2, 0.3, 0.5, 0.7, 0.9, 1}
	// CountBuckets covers small per-stream cardinalities (fragments per
	// stream, containers touched) up to 100k.
	CountBuckets = []float64{1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 5000, 10000, 100000}
)

// Name renders base plus label pairs in Prometheus notation:
// Name("x_total", "decision", "dedup") → `x_total{decision="dedup"}`.
// Instruments with the same base but different labels are distinct series
// of one metric family. Panics on an odd number of label arguments.
func Name(base string, labels ...string) string {
	if len(labels)%2 != 0 {
		panic("telemetry: Name requires key/value label pairs")
	}
	if len(labels) == 0 {
		return base
	}
	var b strings.Builder
	b.WriteString(base)
	b.WriteByte('{')
	for i := 0; i < len(labels); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", labels[i], labels[i+1])
	}
	b.WriteByte('}')
	return b.String()
}

// splitName cuts a full series name into metric family base and the label
// body (without braces, empty when unlabelled).
func splitName(name string) (base, labels string) {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i], strings.TrimSuffix(name[i+1:], "}")
	}
	return name, ""
}

// Registry holds named instruments. All methods are safe for concurrent
// use; the same name always returns the same instrument (get-or-create),
// so package-level instrument variables and dynamic lookups can coexist.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	help     map[string]string // metric family base → help text

	sink *eventSink
	tail *tailCapture
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		help:     make(map[string]string),
		tail:     newTailCapture(),
	}
}

var std = NewRegistry()

// Default returns the process-wide registry all instrumented packages use.
func Default() *Registry { return std }

// Counter returns (creating if needed) the counter with this series name.
func (r *Registry) Counter(name, help string) *Counter {
	r.mu.RLock()
	c, ok := r.counters[name]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok = r.counters[name]; ok {
		return c
	}
	c = &Counter{}
	r.counters[name] = c
	r.setHelp(name, help)
	return c
}

// Gauge returns (creating if needed) the gauge with this series name.
func (r *Registry) Gauge(name, help string) *Gauge {
	r.mu.RLock()
	g, ok := r.gauges[name]
	r.mu.RUnlock()
	if ok {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok = r.gauges[name]; ok {
		return g
	}
	g = &Gauge{}
	r.gauges[name] = g
	r.setHelp(name, help)
	return g
}

// Histogram returns (creating if needed) the histogram with this series
// name. bounds must be sorted ascending; they are fixed at first creation
// (later calls with different bounds get the existing instrument).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	r.mu.RLock()
	h, ok := r.hists[name]
	r.mu.RUnlock()
	if ok {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok = r.hists[name]; ok {
		return h
	}
	if !sort.Float64sAreSorted(bounds) {
		panic("telemetry: histogram bounds must be sorted")
	}
	h = &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Int64, len(bounds)+1),
	}
	r.hists[name] = h
	r.setHelp(name, help)
	return h
}

func (r *Registry) setHelp(name, help string) {
	base, _ := splitName(name)
	if help != "" {
		if _, ok := r.help[base]; !ok {
			r.help[base] = help
		}
	}
}

// Reset zeroes every registered instrument in place (instrument pointers
// held by instrumented packages stay valid). Intended for tests that assert
// exact counts against the shared Default registry.
func (r *Registry) Reset() {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, c := range r.counters {
		c.v.Store(0)
	}
	for _, g := range r.gauges {
		g.bits.Store(0)
	}
	for _, h := range r.hists {
		for i := range h.counts {
			h.counts[i].Store(0)
		}
		h.sum.Store(0)
		h.count.Store(0)
	}
}

// Package-level constructors on the Default registry — what instrumented
// packages use for their metric variables.

// NewCounter registers a counter on the Default registry.
func NewCounter(name, help string) *Counter { return std.Counter(name, help) }

// NewGauge registers a gauge on the Default registry.
func NewGauge(name, help string) *Gauge { return std.Gauge(name, help) }

// NewHistogram registers a histogram on the Default registry.
func NewHistogram(name, help string, bounds []float64) *Histogram {
	return std.Histogram(name, help, bounds)
}

// Snapshot is a point-in-time copy of every instrument in a registry,
// keyed by full series name. It is the /debug/snapshot JSON payload.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]float64           `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot captures the current value of every instrument.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := Snapshot{
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]float64, len(r.gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(r.hists)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		s.Histograms[name] = h.Snapshot()
	}
	return s
}
