package telemetry

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "a counter")
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	if r.Counter("c_total", "") != c {
		t.Fatal("same name must return the same counter")
	}
	g := r.Gauge("g", "a gauge")
	g.Set(1.5)
	g.Add(-0.5)
	if got := g.Value(); got != 1.0 {
		t.Fatalf("gauge = %v, want 1.0", got)
	}
}

func TestNegativeCounterPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative Add must panic")
		}
	}()
	NewRegistry().Counter("x", "").Add(-1)
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "hist", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 2, 10, 99, 1000} {
		h.Observe(v)
	}
	s := h.Snapshot()
	// le semantics: 0.5,1 → bucket0; 2,10 → bucket1; 99 → bucket2; 1000 → overflow.
	want := []int64{2, 2, 1, 1}
	for i, n := range want {
		if s.Counts[i] != n {
			t.Fatalf("bucket %d = %d, want %d (%v)", i, s.Counts[i], n, s.Counts)
		}
	}
	if s.Count != 6 {
		t.Fatalf("count = %d, want 6", s.Count)
	}
	if math.Abs(s.Sum-1112.5) > 1e-9 {
		t.Fatalf("sum = %v, want 1112.5", s.Sum)
	}
	if m := s.Mean(); math.Abs(m-1112.5/6) > 1e-9 {
		t.Fatalf("mean = %v", m)
	}
}

func TestHistogramQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("q", "", []float64{10, 20, 30})
	for i := 0; i < 10; i++ {
		h.Observe(5)  // bucket [0,10]
		h.Observe(15) // bucket (10,20]
	}
	s := h.Snapshot()
	if q := s.Quantile(0.25); q < 0 || q > 10 {
		t.Fatalf("p25 = %v, want within [0,10]", q)
	}
	if q := s.Quantile(0.75); q <= 10 || q > 20 {
		t.Fatalf("p75 = %v, want within (10,20]", q)
	}
	if q := (HistogramSnapshot{}).Quantile(0.5); q != 0 {
		t.Fatalf("empty quantile = %v, want 0", q)
	}
}

func TestName(t *testing.T) {
	if got := Name("x_total"); got != "x_total" {
		t.Fatalf("Name = %q", got)
	}
	got := Name("x_total", "decision", "dedup", "engine", "defrag")
	want := `x_total{decision="dedup",engine="defrag"}`
	if got != want {
		t.Fatalf("Name = %q, want %q", got, want)
	}
	base, labels := splitName(got)
	if base != "x_total" || labels != `decision="dedup",engine="defrag"` {
		t.Fatalf("splitName = %q / %q", base, labels)
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter(Name("d_total", "decision", "dedup"), "dedup decisions").Add(7)
	r.Counter(Name("d_total", "decision", "rewrite"), "").Add(3)
	r.Gauge("g", "a gauge").Set(2.5)
	r.Histogram("h_seconds", "durations", []float64{0.1, 1}).Observe(0.05)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# HELP d_total dedup decisions\n",
		"# TYPE d_total counter\n",
		`d_total{decision="dedup"} 7` + "\n",
		`d_total{decision="rewrite"} 3` + "\n",
		"# TYPE g gauge\ng 2.5\n",
		"# TYPE h_seconds histogram\n",
		`h_seconds_bucket{le="0.1"} 1` + "\n",
		`h_seconds_bucket{le="1"} 1` + "\n",
		`h_seconds_bucket{le="+Inf"} 1` + "\n",
		"h_seconds_sum 0.05\n",
		"h_seconds_count 1\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in output:\n%s", want, out)
		}
	}
}

func TestSpanParentingAndSink(t *testing.T) {
	r := NewRegistry()
	var buf bytes.Buffer
	r.SetSink(&buf)

	ctx, root := r.StartSpan(context.Background(), "store.backup")
	_, child := r.StartSpan(ctx, "segment.lookup")
	child.End()
	root.SetSim(250 * time.Millisecond)
	root.End()
	root.End() // second End is a no-op

	dec := json.NewDecoder(&buf)
	var events []SpanRecord
	for {
		var ev SpanRecord
		if err := dec.Decode(&ev); err == io.EOF {
			break
		} else if err != nil {
			t.Fatal(err)
		}
		events = append(events, ev)
	}
	if len(events) != 2 {
		t.Fatalf("got %d events, want 2", len(events))
	}
	if events[0].Name != "segment.lookup" || events[0].Parent != root.ID().String() {
		t.Fatalf("child event %+v not parented to root %s", events[0], root.ID())
	}
	if events[0].Trace != root.Trace().String() || events[1].Trace != root.Trace().String() {
		t.Fatalf("events %+v not all in root trace %s", events, root.Trace())
	}
	if events[1].Name != "store.backup" || events[1].SimNS != int64(250*time.Millisecond) {
		t.Fatalf("root event %+v missing sim duration", events[1])
	}
	if events[1].Parent != "" {
		t.Fatalf("root event has parent %q, want none", events[1].Parent)
	}

	snap := r.Snapshot()
	wall := snap.Histograms[Name("telemetry_span_seconds", "span", "store.backup")]
	if wall.Count != 1 {
		t.Fatalf("span wall histogram count = %d, want 1", wall.Count)
	}
	sim := snap.Histograms[Name("telemetry_span_sim_seconds", "span", "store.backup")]
	if sim.Count != 1 || math.Abs(sim.Sum-0.25) > 1e-9 {
		t.Fatalf("span sim histogram = %+v", sim)
	}
	if SpanFromContext(ctx) != root {
		t.Fatal("SpanFromContext must return the carried span")
	}
}

func TestReset(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "")
	h := r.Histogram("h", "", []float64{1})
	c.Add(5)
	h.Observe(0.5)
	r.Reset()
	if c.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatalf("Reset left state: c=%d h.count=%d", c.Value(), h.Count())
	}
	s := h.Snapshot()
	for i, n := range s.Counts {
		if n != 0 {
			t.Fatalf("bucket %d nonzero after reset", i)
		}
	}
}

func TestHTTPEndpoint(t *testing.T) {
	r := NewRegistry()
	r.Counter("http_test_total", "endpoint test").Add(9)
	srv, err := r.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) (int, string) {
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		var b bytes.Buffer
		_, _ = b.ReadFrom(resp.Body)
		return resp.StatusCode, b.String()
	}

	code, body := get("/metrics")
	if code != http.StatusOK || !strings.Contains(body, "http_test_total 9") {
		t.Fatalf("/metrics: code %d body %q", code, body)
	}
	code, body = get("/debug/snapshot")
	if code != http.StatusOK {
		t.Fatalf("/debug/snapshot: code %d", code)
	}
	var snap Snapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("snapshot not JSON: %v", err)
	}
	if snap.Counters["http_test_total"] != 9 {
		t.Fatalf("snapshot counters = %v", snap.Counters)
	}
	if code, _ = get("/debug/pprof/"); code != http.StatusOK {
		t.Fatalf("/debug/pprof/: code %d", code)
	}
	if code, _ = get("/nope"); code != http.StatusNotFound {
		t.Fatalf("/nope: code %d, want 404", code)
	}
}

// TestConcurrentStress hammers counters, gauges, histograms, dynamic
// registration and spans from many goroutines at once. Run under -race it
// is the concurrency-safety gate for the whole instrument layer.
func TestConcurrentStress(t *testing.T) {
	r := NewRegistry()
	var buf bytes.Buffer
	r.SetSink(&buf)

	const goroutines = 16
	const iters = 2000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			names := []string{"stress_a_total", "stress_b_total", "stress_c_total"}
			for i := 0; i < iters; i++ {
				// Shared instruments, contended registration path included.
				r.Counter(names[i%len(names)], "stress counter").Inc()
				r.Gauge("stress_gauge", "").Add(1)
				r.Histogram("stress_hist", "", RatioBuckets).Observe(float64(i%100) / 100)
				if i%50 == 0 {
					ctx, sp := r.StartSpan(context.Background(), "stress.phase")
					_, inner := r.StartSpan(ctx, "stress.inner")
					inner.End()
					sp.SetSim(time.Duration(i) * time.Microsecond)
					sp.End()
				}
				if i%500 == 0 {
					var sink bytes.Buffer
					_ = r.WritePrometheus(&sink) // concurrent readers
					_ = r.Snapshot()
				}
			}
		}(g)
	}
	wg.Wait()

	var total int64
	for _, n := range []string{"stress_a_total", "stress_b_total", "stress_c_total"} {
		total += r.Counter(n, "").Value()
	}
	if want := int64(goroutines * iters); total != want {
		t.Fatalf("counter total = %d, want %d", total, want)
	}
	if got := r.Gauge("stress_gauge", "").Value(); got != float64(goroutines*iters) {
		t.Fatalf("gauge = %v, want %d", got, goroutines*iters)
	}
	h := r.Histogram("stress_hist", "", RatioBuckets).Snapshot()
	if h.Count != int64(goroutines*iters) {
		t.Fatalf("hist count = %d, want %d", h.Count, goroutines*iters)
	}
	var bucketSum int64
	for _, n := range h.Counts {
		bucketSum += n
	}
	if bucketSum != h.Count {
		t.Fatalf("bucket sum %d != count %d", bucketSum, h.Count)
	}
	spans := r.Histogram(Name("telemetry_span_seconds", "span", "stress.phase"), "", DurationBuckets).Snapshot()
	if want := int64(goroutines * (iters / 50)); spans.Count != want {
		t.Fatalf("span count = %d, want %d", spans.Count, want)
	}
}
