package telemetry

import (
	"context"
	"encoding/hex"
	"fmt"
	"math/rand/v2"
)

// Trace identity: every span belongs to exactly one trace (one client
// request end to end), identified by a 16-byte trace ID, and carries its own
// 8-byte span ID plus its parent's. The wire encoding is the W3C Trace
// Context `traceparent` header, so the loadgen client, the dedupd HTTP
// layer and any external tooling agree on what a request is called.

// TraceID is a W3C trace-id: 16 random bytes, hex-encoded on the wire.
type TraceID [16]byte

// SpanID is a W3C parent-id/span-id: 8 random bytes, hex-encoded.
type SpanID [8]byte

// IsZero reports whether the ID is the invalid all-zero value.
func (t TraceID) IsZero() bool { return t == TraceID{} }

// IsZero reports whether the ID is the invalid all-zero value.
func (s SpanID) IsZero() bool { return s == SpanID{} }

// String returns the 32-char lowercase hex form.
func (t TraceID) String() string { return hex.EncodeToString(t[:]) }

// String returns the 16-char lowercase hex form.
func (s SpanID) String() string { return hex.EncodeToString(s[:]) }

// NewTraceID returns a random non-zero trace ID.
func NewTraceID() TraceID {
	var t TraceID
	for t.IsZero() {
		a, b := rand.Uint64(), rand.Uint64()
		for i := 0; i < 8; i++ {
			t[i] = byte(a >> (8 * i))
			t[8+i] = byte(b >> (8 * i))
		}
	}
	return t
}

// NewSpanID returns a random non-zero span ID.
func NewSpanID() SpanID {
	var s SpanID
	for s.IsZero() {
		a := rand.Uint64()
		for i := 0; i < 8; i++ {
			s[i] = byte(a >> (8 * i))
		}
	}
	return s
}

// FormatTraceParent renders the W3C traceparent header value
// (version 00, sampled flag set): "00-<trace-id>-<parent-id>-01".
func FormatTraceParent(t TraceID, s SpanID) string {
	return fmt.Sprintf("00-%s-%s-01", t, s)
}

// ParseTraceParent parses a W3C traceparent header value. It accepts any
// version byte (per spec, unknown versions degrade to version-00 parsing of
// the leading fields) and rejects malformed or all-zero IDs.
func ParseTraceParent(v string) (TraceID, SpanID, bool) {
	var t TraceID
	var s SpanID
	// "vv-" + 32 hex + "-" + 16 hex + "-" + flags(2 hex)
	if len(v) < 55 || v[2] != '-' || v[35] != '-' || v[52] != '-' {
		return t, s, false
	}
	if _, err := hex.Decode(t[:], []byte(v[3:35])); err != nil {
		return t, s, false
	}
	if _, err := hex.Decode(s[:], []byte(v[36:52])); err != nil {
		return t, s, false
	}
	if v[:2] == "ff" || t.IsZero() || s.IsZero() {
		return TraceID{}, SpanID{}, false
	}
	return t, s, true
}

// remoteParent marks a context as continuing a trace started elsewhere (a
// client that sent traceparent): the next span started from the context
// becomes the trace's local root, parented to the remote span.
type remoteParent struct {
	trace TraceID
	span  SpanID
}

type remoteParentKey struct{}

// ContextWithRemoteParent returns a context carrying a remote trace
// identity. The next StartSpan from it joins trace t as a local root whose
// parent is the remote span s.
func ContextWithRemoteParent(ctx context.Context, t TraceID, s SpanID) context.Context {
	if ctx == nil {
		ctx = context.Background()
	}
	return context.WithValue(ctx, remoteParentKey{}, remoteParent{trace: t, span: s})
}

// TraceFromContext returns the trace ID the context's innermost span (or
// remote parent) belongs to, and whether one is present.
func TraceFromContext(ctx context.Context) (TraceID, bool) {
	if ctx == nil {
		return TraceID{}, false
	}
	if s, ok := ctx.Value(spanCtxKey{}).(*Span); ok && s != nil {
		return s.trace, true
	}
	if rp, ok := ctx.Value(remoteParentKey{}).(remoteParent); ok {
		return rp.trace, true
	}
	return TraceID{}, false
}
