package telemetry

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

func TestTraceParentRoundTrip(t *testing.T) {
	tid, sid := NewTraceID(), NewSpanID()
	hdr := FormatTraceParent(tid, sid)
	if len(hdr) != 55 || !strings.HasPrefix(hdr, "00-") {
		t.Fatalf("traceparent %q not in W3C shape", hdr)
	}
	gt, gs, ok := ParseTraceParent(hdr)
	if !ok || gt != tid || gs != sid {
		t.Fatalf("round trip: got %s/%s ok=%v, want %s/%s", gt, gs, ok, tid, sid)
	}
}

func TestParseTraceParentRejects(t *testing.T) {
	valid := FormatTraceParent(NewTraceID(), NewSpanID())
	for _, bad := range []string{
		"",
		"00",
		"garbage",
		valid[:54],                          // truncated
		strings.Replace(valid, "-", "_", 1), // wrong separator
		"00-" + strings.Repeat("0", 32) + "-" + valid[36:52] + "-01", // zero trace id
		"00-" + valid[3:35] + "-" + strings.Repeat("0", 16) + "-01",  // zero span id
		"ff" + valid[2:], // forbidden version
		"00-" + strings.Repeat("zz", 16) + "-" + valid[36:52] + "-01", // non-hex
	} {
		if _, _, ok := ParseTraceParent(bad); ok {
			t.Errorf("ParseTraceParent(%q) accepted, want reject", bad)
		}
	}
	// Unknown (non-ff) versions parse as version-00.
	if _, _, ok := ParseTraceParent("cc" + valid[2:]); !ok {
		t.Error("unknown version must degrade to version-00 parsing")
	}
}

func TestRemoteParentMakesLocalRoot(t *testing.T) {
	r := NewRegistry()
	rtid, rsid := NewTraceID(), NewSpanID()
	ctx := ContextWithRemoteParent(context.Background(), rtid, rsid)
	if got, ok := TraceFromContext(ctx); !ok || got != rtid {
		t.Fatalf("TraceFromContext = %s/%v, want remote trace %s", got, ok, rtid)
	}
	ctx, sp := r.StartSpan(ctx, "server.handler")
	if sp.Trace() != rtid {
		t.Fatalf("span joined trace %s, want remote %s", sp.Trace(), rtid)
	}
	_, child := r.StartSpan(ctx, "server.inner")
	child.End()
	sp.End()

	// The local root must finalize the tail capture for its (remote) trace.
	view := r.Traces()
	if len(view.Traces) != 1 {
		t.Fatalf("retained %d traces, want 1", len(view.Traces))
	}
	tr := view.Traces[0]
	if tr.Trace != rtid.String() || tr.Root != "server.handler" {
		t.Fatalf("retained trace %+v, want root server.handler of %s", tr, rtid)
	}
	if len(tr.Spans) != 2 {
		t.Fatalf("retained %d spans, want 2", len(tr.Spans))
	}
	// Root is last (end order); it must carry the remote span as parent.
	root := tr.Spans[1]
	if root.Parent != rsid.String() {
		t.Fatalf("local root parent %q, want remote span %s", root.Parent, rsid)
	}
	if tr.Spans[0].Parent != root.ID {
		t.Fatalf("child parent %q, want local root %s", tr.Spans[0].Parent, root.ID)
	}
}

func TestTailCaptureRetention(t *testing.T) {
	r := NewRegistry()
	endRoot := func(name string, fail error) TraceID {
		_, sp := r.StartSpan(context.Background(), name)
		sp.SetError(fail)
		sp.End()
		return sp.Trace()
	}
	// Warmup: the first tailWarmup roots are always retained.
	var warm []TraceID
	for i := 0; i < tailWarmup; i++ {
		warm = append(warm, endRoot("req", nil))
	}
	view := r.Traces()
	if len(view.Traces) != tailWarmup {
		t.Fatalf("retained %d after warmup, want %d", len(view.Traces), tailWarmup)
	}
	for i, tr := range view.Traces {
		if tr.Reason != "warmup" {
			t.Fatalf("trace %d reason %q, want warmup", i, tr.Reason)
		}
	}
	// Errored roots are always retained, regardless of latency.
	etid := endRoot("req", errors.New("boom"))
	found := false
	for _, tr := range r.Traces().Traces {
		if tr.Trace == etid.String() {
			found = true
			if tr.Reason != "error" || tr.Err != "boom" {
				t.Fatalf("errored trace retained as %+v", tr)
			}
		}
	}
	if !found {
		t.Fatal("errored trace not retained")
	}
	// A slow root (beyond any latency seen so far) is retained as "slow".
	_, slow := r.StartSpan(context.Background(), "req")
	slow.start = slow.start.Add(-time.Second) // fake a 1s request
	slow.End()
	found = false
	for _, tr := range r.Traces().Traces {
		if tr.Trace == slow.Trace().String() {
			found = true
			if tr.Reason != "slow" {
				t.Fatalf("slow trace reason %q, want slow", tr.Reason)
			}
		}
	}
	if !found {
		t.Fatal("slow trace not retained")
	}
	_ = warm
}

func TestTailCaptureRingBound(t *testing.T) {
	r := NewRegistry()
	// Errored roots always retain; overflow the ring.
	for i := 0; i < tailRetainedCap+10; i++ {
		_, sp := r.StartSpan(context.Background(), "req")
		sp.SetError(errors.New("x"))
		sp.End()
	}
	view := r.Traces()
	if len(view.Traces) != tailRetainedCap {
		t.Fatalf("ring holds %d, want %d", len(view.Traces), tailRetainedCap)
	}
	if view.Kept != int64(tailRetainedCap+10) {
		t.Fatalf("kept_total = %d, want %d", view.Kept, tailRetainedCap+10)
	}
}

func TestSetTracingKillSwitch(t *testing.T) {
	r := NewRegistry()
	prev := SetTracing(false)
	defer SetTracing(prev)
	ctx, sp := r.StartSpan(context.Background(), "off")
	if sp != nil {
		t.Fatal("StartSpan must return a nil span with tracing off")
	}
	// All span methods must be nil-safe no-ops.
	sp.SetAttr("k", "v")
	sp.SetSim(time.Second)
	sp.SetError(errors.New("x"))
	sp.End()
	if sp.Trace() != (TraceID{}) || sp.ID() != (SpanID{}) || sp.Name() != "" {
		t.Fatal("nil span accessors must return zero values")
	}
	if SpanFromContext(ctx) != nil {
		t.Fatal("context must not carry a span with tracing off")
	}
	if len(r.Traces().Traces) != 0 {
		t.Fatal("no traces must be captured with tracing off")
	}
}

func TestStageClock(t *testing.T) {
	a := Stage("test_stage_a")
	if Stage("test_stage_a") != a {
		t.Fatal("same stage name must return the same clock")
	}
	a.Observe(time.Now().Add(-time.Millisecond))
	a.AddNS(5e6)
	if got := a.TotalNS(); got < 6e6 {
		t.Fatalf("stage total %d ns, want >= 6ms", got)
	}
	totals := StageTotals()
	if totals["test_stage_a"] != a.TotalNS() {
		t.Fatalf("StageTotals = %v, missing test_stage_a", totals)
	}
	names := StageNames()
	found := false
	for _, n := range names {
		found = found || n == "test_stage_a"
	}
	if !found {
		t.Fatalf("StageNames() = %v, missing test_stage_a", names)
	}
}
