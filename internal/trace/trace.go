// Package trace serializes backup recipes (stream manifests) to a compact
// binary format, so catalogs built by one run can be restored or analyzed by
// another without re-ingesting the data. Used by the CLIs.
//
// Format (little-endian):
//
//	magic "DFRC" | version u16 | label len u16 | label bytes | ref count u64
//	then per ref: fp[32] | size u32 | container u32 | segment u64 |
//	              offset i64
package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/chunk"
)

var magic = [4]byte{'D', 'F', 'R', 'C'}

const version = 1

// Save writes the recipe to w.
func Save(w io.Writer, r *chunk.Recipe) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magic[:]); err != nil {
		return err
	}
	if len(r.Label) > 65535 {
		return fmt.Errorf("trace: label too long (%d)", len(r.Label))
	}
	if err := binary.Write(bw, binary.LittleEndian, uint16(version)); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint16(len(r.Label))); err != nil {
		return err
	}
	if _, err := bw.WriteString(r.Label); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint64(len(r.Refs))); err != nil {
		return err
	}
	for i := range r.Refs {
		ref := &r.Refs[i]
		if _, err := bw.Write(ref.FP[:]); err != nil {
			return err
		}
		for _, v := range []any{ref.Size, ref.Loc.Container, ref.Loc.Segment, ref.Loc.Offset} {
			if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// Load reads a recipe written by Save.
func Load(r io.Reader) (*chunk.Recipe, error) {
	br := bufio.NewReader(r)
	var m [4]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if m != magic {
		return nil, fmt.Errorf("trace: bad magic %q", m)
	}
	var ver, labelLen uint16
	if err := binary.Read(br, binary.LittleEndian, &ver); err != nil {
		return nil, err
	}
	if ver != version {
		return nil, fmt.Errorf("trace: unsupported version %d", ver)
	}
	if err := binary.Read(br, binary.LittleEndian, &labelLen); err != nil {
		return nil, err
	}
	label := make([]byte, labelLen)
	if _, err := io.ReadFull(br, label); err != nil {
		return nil, err
	}
	var count uint64
	if err := binary.Read(br, binary.LittleEndian, &count); err != nil {
		return nil, err
	}
	const maxRefs = 1 << 32 // sanity bound against corrupt headers
	if count > maxRefs {
		return nil, fmt.Errorf("trace: implausible ref count %d", count)
	}
	rec := &chunk.Recipe{Label: string(label), Refs: make([]chunk.Ref, count)}
	for i := range rec.Refs {
		ref := &rec.Refs[i]
		if _, err := io.ReadFull(br, ref.FP[:]); err != nil {
			return nil, fmt.Errorf("trace: ref %d: %w", i, err)
		}
		if err := binary.Read(br, binary.LittleEndian, &ref.Size); err != nil {
			return nil, err
		}
		if err := binary.Read(br, binary.LittleEndian, &ref.Loc.Container); err != nil {
			return nil, err
		}
		if err := binary.Read(br, binary.LittleEndian, &ref.Loc.Segment); err != nil {
			return nil, err
		}
		if err := binary.Read(br, binary.LittleEndian, &ref.Loc.Offset); err != nil {
			return nil, err
		}
		ref.Loc.Size = ref.Size
	}
	return rec, nil
}
