package trace

import (
	"bytes"
	"io"
	"testing"
	"testing/quick"

	"repro/internal/chunk"
)

func sampleRecipe(n int) *chunk.Recipe {
	r := &chunk.Recipe{Label: "u0/g03"}
	for i := 0; i < n; i++ {
		fp := chunk.Of([]byte{byte(i), byte(i >> 8)})
		r.Append(fp, uint32(100+i), chunk.Location{
			Container: uint32(i / 10),
			Segment:   uint64(i / 5),
			Offset:    int64(i) * 512,
			Size:      uint32(100 + i),
		})
	}
	return r
}

func TestRoundTrip(t *testing.T) {
	want := sampleRecipe(137)
	var buf bytes.Buffer
	if err := Save(&buf, want); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Label != want.Label || got.Len() != want.Len() {
		t.Fatalf("header mismatch: %q/%d vs %q/%d", got.Label, got.Len(), want.Label, want.Len())
	}
	for i := range want.Refs {
		if got.Refs[i] != want.Refs[i] {
			t.Fatalf("ref %d: %+v != %+v", i, got.Refs[i], want.Refs[i])
		}
	}
}

func TestEmptyRecipe(t *testing.T) {
	var buf bytes.Buffer
	if err := Save(&buf, &chunk.Recipe{Label: ""}); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 0 || got.Label != "" {
		t.Fatal("empty recipe round trip")
	}
}

func TestBadMagic(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("NOPE...."))); err == nil {
		t.Fatal("bad magic must error")
	}
}

func TestTruncatedInput(t *testing.T) {
	var buf bytes.Buffer
	if err := Save(&buf, sampleRecipe(10)); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, cut := range []int{0, 3, 5, 10, len(full) / 2, len(full) - 1} {
		if _, err := Load(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("truncation at %d must error", cut)
		}
	}
}

func TestUnsupportedVersion(t *testing.T) {
	var buf bytes.Buffer
	if err := Save(&buf, sampleRecipe(1)); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	b[4] = 99 // version low byte
	if _, err := Load(bytes.NewReader(b)); err == nil {
		t.Fatal("future version must be rejected")
	}
}

func TestOversizedLabelRejected(t *testing.T) {
	r := &chunk.Recipe{Label: string(make([]byte, 70000))}
	if err := Save(io.Discard, r); err == nil {
		t.Fatal("oversized label must error")
	}
}

// Property: any recipe survives a round trip bit-exactly.
func TestRoundTripProperty(t *testing.T) {
	fn := func(label string, sizes []uint16) bool {
		if len(label) > 1000 {
			label = label[:1000]
		}
		r := &chunk.Recipe{Label: label}
		for i, sz := range sizes {
			r.Append(chunk.Of([]byte{byte(i)}), uint32(sz)+1, chunk.Location{
				Container: uint32(i),
				Segment:   uint64(sz),
				Offset:    int64(i) * 17,
				Size:      uint32(sz) + 1,
			})
		}
		var buf bytes.Buffer
		if err := Save(&buf, r); err != nil {
			return false
		}
		got, err := Load(&buf)
		if err != nil || got.Label != r.Label || got.Len() != r.Len() {
			return false
		}
		for i := range r.Refs {
			if got.Refs[i] != r.Refs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
