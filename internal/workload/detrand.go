// Deterministic seekable byte streams for the scenario generators.
//
// The backup scenario's xorshift extents (workload.go) predate this file and
// are pinned by golden transcripts; the primary and workspace scenarios use
// the ChaCha20 keystream below instead. A keystream has two properties the
// scenarios need that ad-hoc PRNG chains lack:
//
//   - Seekable: byte k is byte k%64 of block k/64, so a reader can generate
//     any extent of a logical object without producing the prefix. Duplicate
//     regions regenerate bit-identically from (seed, offset) alone.
//   - Forkable: streams are keyed by SHA-256(label ‖ seed), so every file,
//     volume, and tenant derives an independent stream from one root seed.
//     Adding a stream never perturbs the bytes of an existing one.
//
// The construction follows kubo's testutils deterministic randomness (seed
// hashed to a ChaCha20 key, zero nonce); the cipher core is implemented here
// because the repo carries no external dependencies. This is load generation,
// not cryptography: 20 rounds of ChaCha are simply a cheap, well-distributed,
// position-addressable hash.
package workload

import (
	"crypto/sha256"
	"encoding/binary"
	"io"
	"math/bits"
)

// DetRand is one deterministic byte stream: an unbounded, seekable sequence
// fully determined by the (seed, label) pair given to NewDetRand. The zero
// nonce/stream position convention means equal keys yield equal bytes at
// equal offsets, on any platform and under any GOMAXPROCS.
//
// A DetRand caches one 64-byte block and is not safe for concurrent use;
// construction is cheap (one SHA-256), so give each reader its own.
type DetRand struct {
	key  [8]uint32
	idx  uint64 // block number held in buf, valid when have
	have bool
	buf  [64]byte
}

// NewDetRand derives an independent stream from a root seed and a label.
// Distinct labels (or seeds) give computationally unrelated streams.
func NewDetRand(seed int64, label string) *DetRand {
	h := sha256.New()
	io.WriteString(h, label)
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(seed))
	h.Write(b[:])
	var sum = h.Sum(nil)
	d := &DetRand{}
	for i := range d.key {
		d.key[i] = binary.LittleEndian.Uint32(sum[i*4:])
	}
	return d
}

// DeriveSeed folds (seed, label, n) into a new 64-bit seed. The scenario
// generators use it to fork per-stream, per-file, and per-round seeds from
// one root so that each object's bytes are independent of how many siblings
// exist — the fan-out fix: stream i's content depends only on (root, i).
func DeriveSeed(seed int64, label string, n int64) int64 {
	h := sha256.New()
	io.WriteString(h, label)
	var b [16]byte
	binary.LittleEndian.PutUint64(b[:8], uint64(seed))
	binary.LittleEndian.PutUint64(b[8:], uint64(n))
	h.Write(b[:])
	sum := h.Sum(nil)
	return int64(binary.LittleEndian.Uint64(sum[:8]))
}

// FillAt writes the stream bytes for absolute offsets [off, off+len(p)).
func (d *DetRand) FillAt(p []byte, off int64) {
	for len(p) > 0 {
		blk := uint64(off) / 64
		k := int(uint64(off) % 64)
		if !d.have || d.idx != blk {
			chachaBlock(&d.key, blk, &d.buf)
			d.idx, d.have = blk, true
		}
		n := copy(p, d.buf[k:])
		p = p[n:]
		off += int64(n)
	}
}

// quarterRound is the ChaCha quarter-round on four state words.
func quarterRound(a, b, c, d uint32) (uint32, uint32, uint32, uint32) {
	a += b
	d = bits.RotateLeft32(d^a, 16)
	c += d
	b = bits.RotateLeft32(b^c, 12)
	a += b
	d = bits.RotateLeft32(d^a, 8)
	c += d
	b = bits.RotateLeft32(b^c, 7)
	return a, b, c, d
}

// chachaBlock produces keystream block counter into out: the original
// ChaCha20 block function with a 64-bit counter and zero nonce.
func chachaBlock(key *[8]uint32, counter uint64, out *[64]byte) {
	var s [16]uint32
	s[0], s[1], s[2], s[3] = 0x61707865, 0x3320646e, 0x79622d32, 0x6b206574
	copy(s[4:12], key[:])
	s[12] = uint32(counter)
	s[13] = uint32(counter >> 32)
	// s[14], s[15]: zero nonce.
	x := s
	for i := 0; i < 10; i++ {
		// Column rounds.
		x[0], x[4], x[8], x[12] = quarterRound(x[0], x[4], x[8], x[12])
		x[1], x[5], x[9], x[13] = quarterRound(x[1], x[5], x[9], x[13])
		x[2], x[6], x[10], x[14] = quarterRound(x[2], x[6], x[10], x[14])
		x[3], x[7], x[11], x[15] = quarterRound(x[3], x[7], x[11], x[15])
		// Diagonal rounds.
		x[0], x[5], x[10], x[15] = quarterRound(x[0], x[5], x[10], x[15])
		x[1], x[6], x[11], x[12] = quarterRound(x[1], x[6], x[11], x[12])
		x[2], x[7], x[8], x[13] = quarterRound(x[2], x[7], x[8], x[13])
		x[3], x[4], x[9], x[14] = quarterRound(x[3], x[4], x[9], x[14])
	}
	for i := range x {
		binary.LittleEndian.PutUint32(out[i*4:], x[i]+s[i])
	}
}

// detFile is one logical file of a scenario stream: a stable header identity
// plus a deterministic body keyed by (seed, version). Bumping version models
// an edit — the whole body re-keys, which is the right granularity for the
// workspace scenario's package installs and source saves.
type detFile struct {
	id      uint64
	seed    int64
	version int64
	size    int64
}

// detStream reads a sequence of detFiles in the backup-stream framing the
// chunker already understands: a 64-byte header per file, then the body.
type detStream struct {
	files []detFile
	fi    int
	off   int64 // offset within the current unit (header or body)
	hdr   [64]byte
	inHdr bool
	init  bool
	det   *DetRand
}

// newDetStream builds the reader. It copies files so callers may reuse and
// mutate their slice after streaming begins.
func newDetStream(files []detFile) *detStream {
	return &detStream{files: append([]detFile(nil), files...)}
}

// detStreamSize is the exact byte length of the framed stream.
func detStreamSize(files []detFile) int64 {
	n := int64(len(files)) * 64
	for _, f := range files {
		n += f.size
	}
	return n
}

func (r *detStream) Read(p []byte) (int, error) {
	total := 0
	for total < len(p) {
		if r.fi >= len(r.files) {
			if total > 0 {
				return total, nil
			}
			return 0, io.EOF
		}
		f := &r.files[r.fi]
		if !r.init {
			r.hdr = headerFor(f.id, f.size)
			r.inHdr, r.off, r.init = true, 0, true
			r.det = NewDetRand(DeriveSeed(f.seed, "detfile", f.version), "body")
		}
		if r.inHdr {
			n := copy(p[total:], r.hdr[r.off:])
			r.off += int64(n)
			total += n
			if r.off == int64(len(r.hdr)) {
				r.inHdr, r.off = false, 0
				if f.size == 0 {
					r.fi++
					r.init = false
				}
			}
			continue
		}
		n := int64(len(p) - total)
		if remain := f.size - r.off; n > remain {
			n = remain
		}
		r.det.FillAt(p[total:total+int(n)], r.off)
		r.off += n
		total += int(n)
		if r.off == f.size {
			r.fi++
			r.init = false
		}
	}
	return total, nil
}
