package workload

import (
	"bytes"
	"testing"
)

func TestDetRandDeterministic(t *testing.T) {
	a := make([]byte, 4096)
	b := make([]byte, 4096)
	NewDetRand(7, "x").FillAt(a, 0)
	NewDetRand(7, "x").FillAt(b, 0)
	if !bytes.Equal(a, b) {
		t.Fatal("same seed+label must produce identical bytes")
	}
	NewDetRand(7, "y").FillAt(b, 0)
	if bytes.Equal(a, b) {
		t.Fatal("different labels must differ")
	}
	NewDetRand(8, "x").FillAt(b, 0)
	if bytes.Equal(a, b) {
		t.Fatal("different seeds must differ")
	}
}

// TestDetRandSeekable pins the generator's defining property: byte k of the
// stream depends only on (seed, label, k), so any access pattern — odd
// offsets, overlapping windows, descending order — reproduces the same
// bytes as one sequential fill.
func TestDetRandSeekable(t *testing.T) {
	const n = 8192
	want := make([]byte, n)
	NewDetRand(3, "seek").FillAt(want, 0)

	r := NewDetRand(3, "seek")
	for _, win := range []struct{ off, len int64 }{
		{0, 1}, {63, 2}, {64, 64}, {8191, 1}, {100, 999}, {4000, 128}, {1, 63},
	} {
		got := make([]byte, win.len)
		r.FillAt(got, win.off)
		if !bytes.Equal(got, want[win.off:win.off+win.len]) {
			t.Fatalf("window [%d,%d) diverges from sequential fill", win.off, win.off+win.len)
		}
	}
}

func TestQuarterRoundVector(t *testing.T) {
	// RFC 7539 §2.1.1 test vector.
	a, b, c, d := quarterRound(0x11111111, 0x01020304, 0x9b8d6f43, 0x01234567)
	if a != 0xea2a92f4 || b != 0xcb1cf8ce || c != 0x4581472e || d != 0x5881c4bb {
		t.Fatalf("quarter round: got %08x %08x %08x %08x", a, b, c, d)
	}
}

func TestDeriveSeedIndependence(t *testing.T) {
	seen := map[int64]string{}
	add := func(s int64, what string) {
		if prev, dup := seen[s]; dup {
			t.Fatalf("seed collision between %s and %s", prev, what)
		}
		seen[s] = what
	}
	add(DeriveSeed(1, "a", 0), "1/a/0")
	add(DeriveSeed(1, "a", 1), "1/a/1")
	add(DeriveSeed(1, "b", 0), "1/b/0")
	add(DeriveSeed(2, "a", 0), "2/a/0")
	// Deriving must be stable.
	if DeriveSeed(1, "a", 0) != DeriveSeed(1, "a", 0) {
		t.Fatal("DeriveSeed not deterministic")
	}
}

func TestDetStreamHeaderAndSize(t *testing.T) {
	files := []detFile{
		{id: 1, seed: 11, version: 0, size: 1000},
		{id: 2, seed: 12, version: 3, size: 64<<10 + 17},
	}
	data := readAll(t, newDetStream(files))
	if int64(len(data)) != detStreamSize(files) {
		t.Fatalf("stream length %d != detStreamSize %d", len(data), detStreamSize(files))
	}
	again := readAll(t, newDetStream(files))
	if !bytes.Equal(data, again) {
		t.Fatal("detStream not deterministic")
	}
	// Bumping a version must change that file's body but not the other's.
	files[1].version = 4
	bumped := readAll(t, newDetStream(files))
	if bytes.Equal(data, bumped) {
		t.Fatal("version bump must change bytes")
	}
	if !bytes.Equal(data[:64+1000], bumped[:64+1000]) {
		t.Fatal("version bump of file 2 must not disturb file 1")
	}
}
