package workload

import (
	"fmt"
	"io"
	"math/rand"
)

// Backup is one scheduled backup: a labeled full-backup stream of one
// user's file system at some generation.
type Backup struct {
	Label  string // e.g. "u2/g05"
	User   int
	Gen    int
	Size   int64
	Stream io.Reader
}

// MultiUser models the paper's Fig. 4–6 dataset shape: several users'
// file systems backed up in an interleaved schedule, totaling a given
// number of backups (the paper: 5 students, 66 backups, 1.72 TB).
type MultiUser struct {
	fss      []*FS
	nextUser int
	count    int
}

// NewMultiUser creates users file systems. Each user gets an independent
// seed derived from cfg.Seed, and user file counts are staggered ±25% so the
// streams differ in size as real users' do. When cfg.SharedFraction > 0,
// that fraction of each user's initial files comes from a pool common to
// all users (identical content until each user's edits diverge it).
func NewMultiUser(users int, cfg Config) (*MultiUser, error) {
	if users <= 0 {
		return nil, fmt.Errorf("workload: need at least one user, got %d", users)
	}
	// The shared pool: deterministic (seed, size) pairs all users draw from.
	type sharedFile struct {
		seed uint64
		size int64
	}
	var pool []sharedFile
	if cfg.SharedFraction > 0 {
		rng := rand.New(rand.NewSource(cfg.Seed*31 + 17))
		n := int(float64(cfg.NumFiles) * cfg.SharedFraction)
		for i := 0; i < n; i++ {
			pool = append(pool, sharedFile{
				seed: rng.Uint64(),
				size: cfg.MeanFileSize/4 + rng.Int63n(cfg.MeanFileSize*9/4) + 1,
			})
		}
	}
	m := &MultiUser{}
	for u := 0; u < users; u++ {
		c := cfg
		c.Seed = cfg.Seed*1000003 + int64(u)*7919
		c.NumFiles = cfg.NumFiles * (75 + (u*13)%50) / 100
		if c.NumFiles < 1 {
			c.NumFiles = 1
		}
		fs, err := NewFS(c)
		if err != nil {
			return nil, err
		}
		// Replace the head of the file list with the shared pool. These are
		// also the hotspot files, which is realistic: shared project trees
		// are where the churn is.
		for i := 0; i < len(pool) && i < len(fs.files); i++ {
			fs.nextID++
			fs.files[i] = &file{
				id:      fs.nextID,
				extents: []extent{{seed: pool[i].seed, n: pool[i].size}},
			}
		}
		m.fss = append(m.fss, fs)
	}
	return m, nil
}

// Users returns the user count.
func (m *MultiUser) Users() int { return len(m.fss) }

// Next produces the next scheduled backup: users take turns round-robin,
// and a user's file system mutates before each of its backups after the
// first — so every stream shares most content with that user's previous
// generation, plus whatever cross-user redundancy the chunker finds.
func (m *MultiUser) Next() Backup {
	u := m.nextUser
	fs := m.fss[u]
	if m.count >= len(m.fss) { // every user's initial backup happens unmutated
		fs.Mutate()
	}
	b := Backup{
		Label:  fmt.Sprintf("u%d/g%02d", u, fs.Generation()),
		User:   u,
		Gen:    fs.Generation(),
		Size:   fs.LogicalSize() + int64(fs.NumFiles())*64,
		Stream: fs.Stream(),
	}
	m.nextUser = (m.nextUser + 1) % len(m.fss)
	m.count++
	return b
}

// NextRound produces one round of the schedule: the next backup of every
// user, in user order. A round is exactly Users() consecutive Next() calls,
// so replaying rounds serially is identical to the plain interleaved
// schedule — the slice exists so callers can hand a whole round to a
// concurrent multi-stream scheduler (engine.RunStreams) instead.
func (m *MultiUser) NextRound() []Backup {
	round := make([]Backup, len(m.fss))
	for i := range round {
		round[i] = m.Next()
	}
	return round
}

// Single wraps one FS in the same Backup-producing interface: each call
// returns the current generation's full backup, then mutates. Used for the
// 20-generation single-user experiments (Figs. 2, 3, 6).
type Single struct {
	fs    *FS
	count int
}

// NewSingle creates a single-user schedule.
func NewSingle(cfg Config) (*Single, error) {
	fs, err := NewFS(cfg)
	if err != nil {
		return nil, err
	}
	return &Single{fs: fs}, nil
}

// Next returns the next generation's backup.
func (s *Single) Next() Backup {
	if s.count > 0 {
		s.fs.Mutate()
	}
	s.count++
	b := Backup{
		Label:  fmt.Sprintf("g%02d", s.fs.Generation()),
		Gen:    s.fs.Generation(),
		Size:   s.fs.LogicalSize() + int64(s.fs.NumFiles())*64,
		Stream: s.fs.Stream(),
	}
	return b
}

// Schedule is the common interface of Single and MultiUser.
type Schedule interface {
	Next() Backup
}

var (
	_ Schedule = (*Single)(nil)
	_ Schedule = (*MultiUser)(nil)
)
