package workload

import (
	"fmt"
	"io"
	"math/rand"
)

// PrimaryConfig parameterizes the primary-storage scenario: several live
// volumes that each emit a window of block writes per round, with mixed
// hot/cold temporal locality in the duplicate structure (after HPDedup,
// arXiv 1702.08153).
//
// Every volume writes DupFraction of its blocks as repeats of blocks it has
// written before; what differs is *where* those repeats come from. A
// clustered volume re-reads runs out of its recent hot window — the cache-
// and locality-friendly shape inline dedup thrives on. A dispersed volume
// repeats runs drawn uniformly from its entire history — every run lands in
// a different cold container, so inline dedup pays an index miss and a
// metadata prefetch per run for little amortization. The engine's inline
// filter exists to tell these two apart at ingest time.
type PrimaryConfig struct {
	Seed        int64
	Streams     int     // live volumes (default 4)
	StreamBytes int64   // bytes written per volume per round (default 8 MiB)
	BlockSize   int     // write granularity (default 4 KiB)
	DupFraction float64 // fraction of blocks repeating earlier writes (default 0.45)
	// ClusteredStreams is the fraction of volumes whose duplicates cluster;
	// the rest disperse. Volume i is clustered iff i < round(frac·Streams),
	// so adding volumes never reassigns existing ones. Default 0.5.
	ClusteredStreams float64
	RunBlocks        int // mean duplicate-run length in blocks (default 16)
	// HotWindow is how far back (in unique blocks) a clustered volume's
	// repeats reach. Default 512.
	HotWindow int
}

// DefaultPrimaryConfig returns the standard primary-storage profile.
func DefaultPrimaryConfig(seed int64) PrimaryConfig {
	return PrimaryConfig{
		Seed:             seed,
		Streams:          4,
		StreamBytes:      8 << 20,
		BlockSize:        4 << 10,
		DupFraction:      0.45,
		ClusteredStreams: 0.5,
		RunBlocks:        16,
		HotWindow:        512,
	}
}

func (c PrimaryConfig) withDefaults() PrimaryConfig {
	d := DefaultPrimaryConfig(c.Seed)
	if c.Streams <= 0 {
		c.Streams = d.Streams
	}
	if c.StreamBytes <= 0 {
		c.StreamBytes = d.StreamBytes
	}
	if c.BlockSize <= 0 {
		c.BlockSize = d.BlockSize
	}
	if c.DupFraction == 0 {
		c.DupFraction = d.DupFraction
	}
	if c.ClusteredStreams == 0 {
		c.ClusteredStreams = d.ClusteredStreams
	}
	if c.RunBlocks <= 0 {
		c.RunBlocks = d.RunBlocks
	}
	if c.HotWindow <= 0 {
		c.HotWindow = d.HotWindow
	}
	return c
}

func (c PrimaryConfig) validate() error {
	if c.DupFraction < 0 || c.DupFraction > 1 || c.ClusteredStreams < 0 || c.ClusteredStreams > 1 {
		return fmt.Errorf("workload: primary fractions out of [0,1] in %+v", c)
	}
	return nil
}

// blockRun is one planned run of a primary window: n consecutive blocks
// whose content is unique-block indices [start, start+n) of the volume.
type blockRun struct {
	start int64
	n     int64
}

// primaryVolume is the per-volume generator state. Its bytes depend only on
// (cfg.Seed, id, round) — never on sibling volumes — so schedules with
// different Streams counts produce identical streams for shared ids.
type primaryVolume struct {
	cfg       PrimaryConfig
	id        int
	clustered bool
	hist      int64 // unique blocks written across all rounds so far
	round     int
}

// window plans and frames the volume's next write window.
func (v *primaryVolume) window() Backup {
	rng := rand.New(rand.NewSource(DeriveSeed(v.cfg.Seed, "primary-window", int64(v.id)<<24|int64(v.round))))
	blocks := v.cfg.StreamBytes / int64(v.cfg.BlockSize)
	if blocks < 1 {
		blocks = 1
	}
	var runs []blockRun
	remaining := blocks
	for remaining > 0 {
		n := int64(1 + rng.Intn(2*v.cfg.RunBlocks))
		if n > remaining {
			n = remaining
		}
		if rng.Float64() < v.cfg.DupFraction && v.hist >= n {
			// Duplicate run: clustered volumes reach into the recent hot
			// window; dispersed volumes reach uniformly across all history.
			var start int64
			if v.clustered {
				reach := int64(v.cfg.HotWindow)
				if reach > v.hist {
					reach = v.hist
				}
				start = v.hist - reach + rng.Int63n(reach)
			} else {
				start = rng.Int63n(v.hist)
			}
			if start+n > v.hist {
				start = v.hist - n
			}
			runs = append(runs, blockRun{start: start, n: n})
		} else {
			runs = append(runs, blockRun{start: v.hist, n: n})
			v.hist += n
		}
		remaining -= n
	}
	size := blocks*int64(v.cfg.BlockSize) + 64
	b := Backup{
		Label: fmt.Sprintf("p%d/r%02d", v.id, v.round),
		User:  v.id,
		Gen:   v.round,
		Size:  size,
		Stream: &primaryReader{
			det:       NewDetRand(DeriveSeed(v.cfg.Seed, "primary-volume", int64(v.id)), "blocks"),
			runs:      runs,
			blockSize: int64(v.cfg.BlockSize),
			hdr:       headerFor(uint64(v.id)<<32|uint64(v.round), size-64),
		},
	}
	v.round++
	return b
}

// Primary is the primary-storage Schedule: volumes take turns round-robin,
// each Next() emitting one volume's next write window.
type Primary struct {
	cfg     PrimaryConfig
	volumes []*primaryVolume
	next    int
}

// NewPrimary builds the schedule.
func NewPrimary(cfg PrimaryConfig) (*Primary, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	p := &Primary{cfg: cfg}
	nClustered := int(cfg.ClusteredStreams*float64(cfg.Streams) + 0.5)
	for i := 0; i < cfg.Streams; i++ {
		p.volumes = append(p.volumes, &primaryVolume{cfg: cfg, id: i, clustered: i < nClustered})
	}
	return p, nil
}

// Streams returns the volume count.
func (p *Primary) Streams() int { return len(p.volumes) }

// Clustered reports whether volume i's duplicates cluster.
func (p *Primary) Clustered(i int) bool { return p.volumes[i].clustered }

// Next implements Schedule.
func (p *Primary) Next() Backup {
	b := p.volumes[p.next].window()
	p.next = (p.next + 1) % len(p.volumes)
	return b
}

// NextRound returns one window from every volume, in volume order.
func (p *Primary) NextRound() []Backup {
	round := make([]Backup, len(p.volumes))
	for i := range round {
		round[i] = p.Next()
	}
	return round
}

// primaryReader frames one window: a 64-byte window header, then the planned
// runs. Block b's content is keystream bytes [b·blockSize, (b+1)·blockSize)
// of the volume's DetRand, so repeats are bit-identical wherever they occur.
type primaryReader struct {
	det       *DetRand
	runs      []blockRun
	blockSize int64
	hdr       [64]byte
	hdrOff    int
	ri        int
	off       int64 // byte offset within the current run
}

func (r *primaryReader) Read(p []byte) (int, error) {
	total := 0
	for total < len(p) {
		if r.hdrOff < len(r.hdr) {
			n := copy(p[total:], r.hdr[r.hdrOff:])
			r.hdrOff += n
			total += n
			continue
		}
		if r.ri >= len(r.runs) {
			if total > 0 {
				return total, nil
			}
			return 0, io.EOF
		}
		run := r.runs[r.ri]
		runBytes := run.n * r.blockSize
		n := int64(len(p) - total)
		if remain := runBytes - r.off; n > remain {
			n = remain
		}
		r.det.FillAt(p[total:total+int(n)], run.start*r.blockSize+r.off)
		r.off += n
		total += int(n)
		if r.off == runBytes {
			r.ri++
			r.off = 0
		}
	}
	return total, nil
}

var _ Schedule = (*Primary)(nil)
