package workload

import (
	"fmt"
	"strings"
)

// Scenario selects one of the workload families the store is exercised
// against. The backup scenario is the paper's original generational shape;
// primary and workspace open the two new workloads (see primary.go and
// workspace.go).
type Scenario int

const (
	ScenarioBackup Scenario = iota
	ScenarioPrimary
	ScenarioWorkspace
)

func (s Scenario) String() string {
	switch s {
	case ScenarioBackup:
		return "backup"
	case ScenarioPrimary:
		return "primary"
	case ScenarioWorkspace:
		return "workspace"
	}
	return "unknown"
}

// ParseScenario maps a CLI/API name to a Scenario.
func ParseScenario(name string) (Scenario, error) {
	switch strings.ToLower(name) {
	case "backup", "":
		return ScenarioBackup, nil
	case "primary":
		return ScenarioPrimary, nil
	case "workspace":
		return ScenarioWorkspace, nil
	}
	return 0, fmt.Errorf("workload: unknown scenario %q (backup, primary, workspace)", name)
}

// AllScenarios lists every scenario, in the order benches report them.
func AllScenarios() []Scenario {
	return []Scenario{ScenarioBackup, ScenarioPrimary, ScenarioWorkspace}
}

// ScenarioParams scales a scenario without exposing each family's full
// config: Users is the stream/volume/tenant fan-out and BytesPerStream the
// approximate bytes one Next() emits. Zero fields take scenario defaults.
type ScenarioParams struct {
	Seed           int64
	Users          int
	BytesPerStream int64
}

// NewScenario builds the Schedule for one scenario. All three families fork
// every per-stream seed from Params.Seed, so equal params reproduce equal
// bytes regardless of host, GOMAXPROCS, or sibling stream count.
func NewScenario(sc Scenario, p ScenarioParams) (Schedule, error) {
	switch sc {
	case ScenarioBackup:
		cfg := DefaultConfig(p.Seed)
		if p.BytesPerStream > 0 {
			cfg.NumFiles = 16
			cfg.MeanFileSize = p.BytesPerStream / int64(cfg.NumFiles)
			if cfg.MeanFileSize < 4<<10 {
				cfg.MeanFileSize = 4 << 10
			}
		}
		if p.Users > 1 {
			cfg.SharedFraction = 0.25
			return NewMultiUser(p.Users, cfg)
		}
		return NewSingle(cfg)
	case ScenarioPrimary:
		cfg := DefaultPrimaryConfig(p.Seed)
		if p.Users > 0 {
			cfg.Streams = p.Users
		}
		if p.BytesPerStream > 0 {
			cfg.StreamBytes = p.BytesPerStream
		}
		return NewPrimary(cfg)
	case ScenarioWorkspace:
		cfg := DefaultWorkspaceConfig(p.Seed)
		if p.Users > 0 {
			cfg.Tenants = p.Users
		}
		if p.BytesPerStream > 0 {
			// Size the registry packages so one tenant's tree lands near the
			// requested scale; sources follow at ~1/8 the package size.
			per := p.BytesPerStream / int64(cfg.WorkspacesPerTenant*cfg.PackagesPerWorkspace)
			if per < 4<<10 {
				per = 4 << 10
			}
			cfg.MeanPackageSize = per
			cfg.MeanSrcFileSize = per / 8
			if cfg.MeanSrcFileSize < 2<<10 {
				cfg.MeanSrcFileSize = 2 << 10
			}
		}
		return NewWorkspace(cfg)
	}
	return nil, fmt.Errorf("workload: unknown scenario %d", sc)
}
