package workload

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata golden digests")

func goldenParams() ScenarioParams {
	return ScenarioParams{Seed: 7, Users: 2, BytesPerStream: 1 << 20}
}

// digestSchedule drains n streams from a fresh schedule and returns the
// SHA-256 of each, labeled.
func digestSchedule(t *testing.T, sc Scenario, p ScenarioParams, n int) []string {
	t.Helper()
	sched, err := NewScenario(sc, p)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		bk := sched.Next()
		sum := sha256.Sum256(readAll(t, bk.Stream))
		out = append(out, fmt.Sprintf("%s %s %s", sc, bk.Label, hex.EncodeToString(sum[:])))
	}
	return out
}

// TestScenarioGoldenDigests pins every scenario's exact bytes: the SHA-256
// of the first six streams of a fixed configuration is checked into
// testdata. Any change to the generators that alters stream bytes — however
// subtle — fails here. Regenerate deliberately with -update.
func TestScenarioGoldenDigests(t *testing.T) {
	var got []string
	for _, sc := range AllScenarios() {
		got = append(got, digestSchedule(t, sc, goldenParams(), 6)...)
	}
	path := filepath.Join("testdata", "scenario_digests.json")
	if *updateGolden {
		blob, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(blob, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden digests (run `go test -run GoldenDigests -update ./internal/workload` to create): %v", err)
	}
	var want []string
	if err := json.Unmarshal(blob, &want); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("digest count %d, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Errorf("digest %d drifted:\n  got  %s\n  want %s", i, got[i], want[i])
		}
	}
}

// TestScenarioDeterministicAcrossGOMAXPROCS regenerates the golden streams
// under different GOMAXPROCS settings, with the per-scenario generation
// itself running on concurrent goroutines, and requires bit-identical
// digests: seeded generators must not read anything scheduler-dependent.
func TestScenarioDeterministicAcrossGOMAXPROCS(t *testing.T) {
	run := func() map[Scenario][]string {
		out := make(map[Scenario][]string)
		var mu sync.Mutex
		var wg sync.WaitGroup
		for _, sc := range AllScenarios() {
			wg.Add(1)
			go func(sc Scenario) {
				defer wg.Done()
				d := digestSchedule(t, sc, goldenParams(), 6)
				mu.Lock()
				out[sc] = d
				mu.Unlock()
			}(sc)
		}
		wg.Wait()
		return out
	}
	prev := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(prev)
	one := run()
	runtime.GOMAXPROCS(8)
	eight := run()
	for _, sc := range AllScenarios() {
		for i := range one[sc] {
			if one[sc][i] != eight[sc][i] {
				t.Fatalf("%s stream %d differs between GOMAXPROCS=1 and 8", sc, i)
			}
		}
	}
}

// TestPrimaryVolumeIndependentOfSiblingCount pins the forked-seed contract:
// a volume's bytes depend only on (seed, volume id, round and its own
// clustered/dispersed role), never on how many sibling volumes the config
// fans out to. Volume 0 is clustered under both Streams=2 and Streams=3, so
// its streams must be bit-identical across the two configs.
func TestPrimaryVolumeIndependentOfSiblingCount(t *testing.T) {
	stream0 := func(streams int) []byte {
		p, err := NewPrimary(PrimaryConfig{Seed: 11, Streams: streams, StreamBytes: 1 << 20})
		if err != nil {
			t.Fatal(err)
		}
		var last []byte
		for r := 0; r < 2; r++ { // two rounds deep: history must fork identically too
			bk := p.Next() // volume 0 leads every round
			last = readAll(t, bk.Stream)
			for i := 1; i < streams; i++ {
				p.Next() // drain siblings
			}
		}
		return last
	}
	if !bytes.Equal(stream0(2), stream0(3)) {
		t.Fatal("volume 0 round 1 bytes depend on sibling count")
	}
}

// TestWorkspaceTenantIndependentOfTenantCount is the same contract for the
// workspace generator: tenant 0's trees must not shift when tenants join.
func TestWorkspaceTenantIndependentOfTenantCount(t *testing.T) {
	tenant0 := func(tenants int) []byte {
		w, err := NewWorkspace(WorkspaceConfig{Seed: 11, Tenants: tenants, WorkspacesPerTenant: 3})
		if err != nil {
			t.Fatal(err)
		}
		var last []byte
		for r := 0; r < 2; r++ {
			bk := w.Next()
			last = readAll(t, bk.Stream)
			for i := 1; i < tenants; i++ {
				w.Next()
			}
		}
		return last
	}
	if !bytes.Equal(tenant0(2), tenant0(4)) {
		t.Fatal("tenant 0 round 1 bytes depend on tenant count")
	}
}

// TestWorkspaceCrossTenantSharing verifies the workload actually produces
// the cross-tenant redundancy the scenario exists to stress: distinct
// tenants resolve popular packages to identical (seed, version) content.
func TestWorkspaceCrossTenantSharing(t *testing.T) {
	w, err := NewWorkspace(WorkspaceConfig{Seed: 3, Tenants: 4})
	if err != nil {
		t.Fatal(err)
	}
	deps := func(tn int) map[wsDep]bool {
		set := make(map[wsDep]bool)
		for _, ws := range w.tenants[tn] {
			for _, d := range ws.deps {
				set[d] = true
			}
		}
		return set
	}
	d0 := deps(0)
	shared := 0
	for d := range deps(1) {
		if d0[d] {
			shared++
		}
	}
	if shared == 0 {
		t.Fatal("tenants 0 and 1 share no packages; workspace scenario would have no cross-tenant dedup")
	}
}

// TestStreamCallCountDoesNotPerturbLaterGenerations pins the satellite fix:
// FS.Stream with ShuffleOrder must not consume the mutation RNG, so an
// extra Stream() call (a retry, a probe) leaves every later generation's
// bytes unchanged.
func TestStreamCallCountDoesNotPerturbLaterGenerations(t *testing.T) {
	cfg := tinyConfig(21)
	cfg.ShuffleOrder = true

	digest := func(extraStreams int) [32]byte {
		fs, err := NewFS(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 1+extraStreams; i++ {
			readAll(t, fs.Stream())
		}
		fs.Mutate()
		return sha256.Sum256(readAll(t, fs.Stream()))
	}
	if digest(0) != digest(3) {
		t.Fatal("extra Stream() calls perturbed the post-Mutate generation")
	}
}

func TestParseScenario(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Scenario
		ok   bool
	}{
		{"backup", ScenarioBackup, true},
		{"", ScenarioBackup, true},
		{"primary", ScenarioPrimary, true},
		{"workspace", ScenarioWorkspace, true},
		{"Primary", ScenarioPrimary, true},
		{"nope", 0, false},
	} {
		sc, err := ParseScenario(tc.in)
		if tc.ok && (err != nil || sc != tc.want) {
			t.Errorf("ParseScenario(%q) = %v, %v; want %v", tc.in, sc, err, tc.want)
		}
		if !tc.ok && err == nil {
			t.Errorf("ParseScenario(%q) should fail", tc.in)
		}
	}
}

func TestScenarioSchedulesSatisfyContract(t *testing.T) {
	for _, sc := range AllScenarios() {
		sched, err := NewScenario(sc, goldenParams())
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 4; i++ {
			bk := sched.Next()
			if bk.Label == "" {
				t.Fatalf("%s stream %d: empty label", sc, i)
			}
			n := int64(len(readAll(t, bk.Stream)))
			if n == 0 {
				t.Fatalf("%s %s: empty stream", sc, bk.Label)
			}
			if bk.Size > 0 && n != bk.Size {
				t.Fatalf("%s %s: stream length %d != announced size %d", sc, bk.Label, n, bk.Size)
			}
		}
	}
}
