// Package workload synthesizes the multi-generation backup datasets that
// drive every experiment, substituting for the paper's private file-system
// backups (647 GB × 20 generations for Figs. 2–3; 1.72 TB across 66 backups
// of five users for Figs. 4–6).
//
// The generator models a file system as a set of files whose contents are
// deterministic pseudo-random extents. Each generation applies a mutation
// pass — overwrite edits, insertions (which shift subsequent content and
// exercise CDC resynchronization), range deletions, file creations and file
// deletions — then streams a full backup (tar-like concatenation of file
// headers and bodies).
//
// What matters for reproducing the paper is the *redundancy structure*
// across generations: most of each backup is shared with earlier ones, the
// shared regions interleave with fresh data at fine grain, and as
// generations accumulate, the physical copies of a stream's chunks scatter
// over ever more disk locations. All of that emerges from this model; see
// DESIGN.md §2 for the substitution argument.
package workload

import (
	"fmt"
	"io"
	"math/rand"
)

// Config parameterizes a synthetic file system and its per-generation churn.
type Config struct {
	Seed         int64
	NumFiles     int   // initial file count
	MeanFileSize int64 // mean of the (geometric-ish) file size distribution

	// Per-generation mutation profile.
	ModifyFraction     float64 // fraction of files edited each generation
	EditsPerFile       int     // mean edits applied to a modified file
	MeanEditSize       int64   // mean bytes per edit
	InsertFraction     float64 // fraction of edits that insert (shift) rather than overwrite
	DeleteRangeFrac    float64 // fraction of edits that delete a range
	NewFileFraction    float64 // files created per generation, as a fraction of NumFiles
	DeleteFileFraction float64 // files deleted per generation, as a fraction of NumFiles

	// ShuffleOrder emits files in a fresh random order on every Stream
	// call instead of stable file order. This is the adversarial
	// no-locality case: the same content arrives, but never in the same
	// sequence, so stream-informed layouts and prefetch-based caches get
	// no help from backup-to-backup ordering.
	ShuffleOrder bool

	// SharedFraction (multi-user schedules only) is the fraction of each
	// user's initial files drawn from a pool common to all users — the
	// paper's five students shared OS and project files. Shared files have
	// identical initial content across users and then diverge with each
	// user's own edits. 0 disables sharing.
	SharedFraction float64

	// HotspotSkew models working-set behaviour: with this probability an
	// edited file is drawn from the hot subset (the HotspotFraction of
	// files with the lowest IDs) instead of uniformly. Real home-directory
	// churn is strongly skewed — active projects are edited every
	// generation, archives never — and this skew is what lets
	// locality-restoring rewrites converge instead of trailing garbage.
	// 0 disables skew.
	HotspotSkew     float64
	HotspotFraction float64 // size of the hot subset (default 0.2 when skew > 0)
}

// DefaultConfig returns a profile producing user-homedir-like churn:
// ~20% of files touched per generation with multi-KB edits, a few creations
// and deletions. Total logical size ≈ NumFiles × MeanFileSize.
func DefaultConfig(seed int64) Config {
	return Config{
		Seed:               seed,
		NumFiles:           64,
		MeanFileSize:       768 << 10,
		ModifyFraction:     0.22,
		EditsPerFile:       2,
		MeanEditSize:       16 << 10,
		InsertFraction:     0.25,
		DeleteRangeFrac:    0.10,
		NewFileFraction:    0.03,
		DeleteFileFraction: 0.015,
		HotspotSkew:        0.8,
		HotspotFraction:    0.2,
	}
}

func (c Config) validate() error {
	if c.NumFiles <= 0 || c.MeanFileSize <= 0 || c.EditsPerFile < 0 {
		return fmt.Errorf("workload: bad config %+v", c)
	}
	for _, f := range []float64{c.ModifyFraction, c.InsertFraction, c.DeleteRangeFrac, c.NewFileFraction, c.DeleteFileFraction, c.HotspotSkew, c.HotspotFraction, c.SharedFraction} {
		if f < 0 || f > 1 {
			return fmt.Errorf("workload: fraction out of [0,1] in %+v", c)
		}
	}
	return nil
}

// extent is a run of deterministic bytes: the byte at position i of the
// extent is byte (skip+i) of the xorshift stream keyed by seed.
type extent struct {
	seed uint64
	skip int64 // offset into the seed's stream where this extent begins
	n    int64 // length in bytes
}

// file is one synthetic file.
type file struct {
	id      uint64
	extents []extent
}

func (f *file) size() int64 {
	var n int64
	for _, e := range f.extents {
		n += e.n
	}
	return n
}

// FS is a mutable synthetic file system.
type FS struct {
	cfg    Config
	rng    *rand.Rand
	files  []*file
	nextID uint64
	gen    int
	// streamSeq counts Stream() calls within the current generation. It
	// keys the ShuffleOrder permutation (with cfg.Seed and gen) so that
	// streaming never consumes fs.rng: opening an extra stream must not
	// perturb the bytes of any later mutation or stream.
	streamSeq int
}

// NewFS builds the generation-0 file system.
func NewFS(cfg Config) (*FS, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	fs := &FS{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
	for i := 0; i < cfg.NumFiles; i++ {
		fs.files = append(fs.files, fs.newFile())
	}
	return fs, nil
}

// newFile creates a file with a size drawn around MeanFileSize (0.25x–2.5x).
func (fs *FS) newFile() *file {
	fs.nextID++
	size := fs.cfg.MeanFileSize/4 + fs.rng.Int63n(fs.cfg.MeanFileSize*9/4) + 1
	return &file{
		id:      fs.nextID,
		extents: []extent{{seed: fs.rng.Uint64(), n: size}},
	}
}

// Generation returns the number of Mutate passes applied.
func (fs *FS) Generation() int { return fs.gen }

// NumFiles returns the current file count.
func (fs *FS) NumFiles() int { return len(fs.files) }

// LogicalSize returns the total bytes of the current file system state.
func (fs *FS) LogicalSize() int64 {
	var n int64
	for _, f := range fs.files {
		n += f.size()
	}
	return n
}

// Mutate advances the file system by one generation of churn.
func (fs *FS) Mutate() {
	fs.gen++
	fs.streamSeq = 0
	// Edit a fraction of files; a generation always touches at least one
	// file (a backup with zero change is not a generation worth modeling).
	nMod := fs.roundFrac(float64(len(fs.files)) * fs.cfg.ModifyFraction)
	if nMod < 1 {
		nMod = 1
	}
	for i := 0; i < nMod && len(fs.files) > 0; i++ {
		f := fs.pickFile()
		edits := 1 + fs.rng.Intn(2*fs.cfg.EditsPerFile+1)
		for e := 0; e < edits; e++ {
			fs.editFile(f)
		}
	}
	// Delete and create files, with probabilistic rounding so fractional
	// expectations survive small file counts.
	nDel := fs.roundFrac(float64(fs.cfg.NumFiles) * fs.cfg.DeleteFileFraction)
	for i := 0; i < nDel && len(fs.files) > 1; i++ {
		k := fs.rng.Intn(len(fs.files))
		fs.files = append(fs.files[:k], fs.files[k+1:]...)
	}
	nNew := fs.roundFrac(float64(fs.cfg.NumFiles) * fs.cfg.NewFileFraction)
	for i := 0; i < nNew; i++ {
		fs.files = append(fs.files, fs.newFile())
	}
}

// pickFile selects a file to edit, honouring the hotspot skew: with
// probability HotspotSkew the file comes from the hot subset (lowest
// HotspotFraction of the current file list).
func (fs *FS) pickFile() *file {
	n := len(fs.files)
	if fs.cfg.HotspotSkew > 0 && fs.rng.Float64() < fs.cfg.HotspotSkew {
		frac := fs.cfg.HotspotFraction
		if frac <= 0 {
			frac = 0.2
		}
		hot := int(float64(n) * frac)
		if hot < 1 {
			hot = 1
		}
		return fs.files[fs.rng.Intn(hot)]
	}
	return fs.files[fs.rng.Intn(n)]
}

// roundFrac rounds x to an integer, resolving the fractional part by a
// Bernoulli draw so the expectation is exact.
func (fs *FS) roundFrac(x float64) int {
	n := int(x)
	if fs.rng.Float64() < x-float64(n) {
		n++
	}
	return n
}

// editFile applies one edit at a random position.
func (fs *FS) editFile(f *file) {
	size := f.size()
	if size == 0 {
		return
	}
	editLen := fs.cfg.MeanEditSize/4 + fs.rng.Int63n(fs.cfg.MeanEditSize*9/4) + 1
	at := fs.rng.Int63n(size)
	r := fs.rng.Float64()
	switch {
	case r < fs.cfg.DeleteRangeFrac:
		n := editLen
		if at+n > size {
			n = size - at
		}
		f.deleteRange(at, n)
	case r < fs.cfg.DeleteRangeFrac+fs.cfg.InsertFraction:
		f.insert(at, extent{seed: fs.rng.Uint64(), n: editLen})
	default:
		// Overwrite: delete then insert the same length (content shifts
		// nothing; only the edited range changes).
		n := editLen
		if at+n > size {
			n = size - at
		}
		f.deleteRange(at, n)
		f.insert(at, extent{seed: fs.rng.Uint64(), n: n})
	}
}

// split ensures an extent boundary exists at byte offset at, returning the
// index of the extent that begins there.
func (f *file) split(at int64) int {
	var pos int64
	for i := range f.extents {
		if pos == at {
			return i
		}
		end := pos + f.extents[i].n
		if at < end {
			e := f.extents[i]
			left := extent{seed: e.seed, skip: e.skip, n: at - pos}
			right := extent{seed: e.seed, skip: e.skip + (at - pos), n: end - at}
			f.extents = append(f.extents[:i], append([]extent{left, right}, f.extents[i+1:]...)...)
			return i + 1
		}
		pos = end
	}
	return len(f.extents)
}

// insert places e at byte offset at.
func (f *file) insert(at int64, e extent) {
	if e.n <= 0 {
		return
	}
	i := f.split(at)
	f.extents = append(f.extents[:i], append([]extent{e}, f.extents[i:]...)...)
}

// deleteRange removes n bytes starting at at.
func (f *file) deleteRange(at, n int64) {
	if n <= 0 {
		return
	}
	i := f.split(at)
	j := f.split(at + n)
	f.extents = append(f.extents[:i], f.extents[j:]...)
}

// Stream returns a reader over the full-backup stream of the current state:
// for each file, a 64-byte header (deterministic function of file id and
// size, standing in for tar metadata) followed by the file body. The reader
// generates bytes lazily; nothing is materialized.
func (fs *FS) Stream() io.Reader {
	// Snapshot the extent lists so later mutations don't affect an open reader.
	files := make([]*file, len(fs.files))
	for i, f := range fs.files {
		files[i] = &file{id: f.id, extents: append([]extent(nil), f.extents...)}
	}
	if fs.cfg.ShuffleOrder {
		// The permutation is keyed by (seed, generation, stream ordinal),
		// not drawn from fs.rng: repeated Stream() calls still emit fresh
		// orders, but a stream can never perturb mutation randomness or the
		// bytes of sibling streams (the fan-out determinism contract).
		shuf := rand.New(rand.NewSource(DeriveSeed(fs.cfg.Seed, "stream-shuffle", int64(fs.gen)<<20|int64(fs.streamSeq))))
		shuf.Shuffle(len(files), func(i, j int) { files[i], files[j] = files[j], files[i] })
	}
	fs.streamSeq++
	return &streamReader{files: files}
}

// streamReader walks files and extents, generating bytes on demand.
//
// Byte k of an extent's seed stream is byte k%8 of word k/8, where word j is
// the (j+1)-th xorshift iterate of the seed. Because the byte at a given
// stream position is position-determined, splitting an extent (skip offsets)
// regenerates identical bytes — edits never corrupt surrounding content.
type streamReader struct {
	files []*file
	fi    int   // current file
	ei    int   // current extent within the file
	off   int64 // offset within the current unit (header or extent)
	hdr   [64]byte
	inHdr bool
	init  bool
	// extent generator state
	state uint64 // xorshift state whose value is the current word
	phase int    // next byte within the current word; 8 = exhausted
}

func (r *streamReader) Read(p []byte) (int, error) {
	total := 0
	for total < len(p) {
		if !r.init {
			if r.fi >= len(r.files) {
				if total > 0 {
					return total, nil
				}
				return 0, io.EOF
			}
			r.beginHeader()
		}
		total += r.fill(p[total:])
	}
	return total, nil
}

func (r *streamReader) beginHeader() {
	f := r.files[r.fi]
	r.hdr = headerFor(f.id, f.size())
	r.inHdr = true
	r.off = 0
	r.ei = 0
	r.init = true
}

// fill copies available bytes of the current unit into p.
func (r *streamReader) fill(p []byte) int {
	f := r.files[r.fi]
	if r.inHdr {
		n := copy(p, r.hdr[r.off:])
		r.off += int64(n)
		if r.off == int64(len(r.hdr)) {
			r.inHdr = false
			r.off = 0
			if len(f.extents) > 0 {
				r.startExtent()
			} else {
				r.advanceFile()
			}
		}
		return n
	}
	e := f.extents[r.ei]
	n := int64(len(p))
	if remain := e.n - r.off; n > remain {
		n = remain
	}
	r.genBytes(p[:n])
	r.off += n
	if r.off == e.n {
		r.ei++
		r.off = 0
		if r.ei < len(f.extents) {
			r.startExtent()
		} else {
			r.advanceFile()
		}
	}
	return int(n)
}

func (r *streamReader) advanceFile() {
	r.fi++
	r.init = false
}

// startExtent primes the generator at the extent's skip position.
func (r *streamReader) startExtent() {
	e := r.files[r.fi].extents[r.ei]
	s := xorshiftInit(e.seed)
	for j := int64(0); j <= e.skip/8; j++ {
		s = xorshiftNext(s)
	}
	r.state = s
	r.phase = int(e.skip % 8)
}

// genBytes writes len(p) deterministic bytes for the current position.
func (r *streamReader) genBytes(p []byte) {
	for i := range p {
		if r.phase == 8 {
			r.state = xorshiftNext(r.state)
			r.phase = 0
		}
		p[i] = byte(r.state >> (8 * uint(r.phase)))
		r.phase++
	}
}

// headerFor builds the 64-byte pseudo-tar header.
func headerFor(id uint64, size int64) [64]byte {
	var h [64]byte
	s := xorshiftInit(id ^ 0xFEEDFACE)
	for i := 0; i < 64; i += 8 {
		s = xorshiftNext(s)
		v := s
		if i == 0 {
			v = id
		}
		if i == 8 {
			v = uint64(size)
		}
		for j := 0; j < 8; j++ {
			h[i+j] = byte(v >> (8 * uint(j)))
		}
	}
	return h
}

func xorshiftInit(seed uint64) uint64 {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return seed
}

func xorshiftNext(x uint64) uint64 {
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	return x
}
