package workload

import (
	"bytes"
	"io"
	"testing"

	"repro/internal/chunker"
)

func readAll(t *testing.T, r io.Reader) []byte {
	t.Helper()
	b, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func tinyConfig(seed int64) Config {
	c := DefaultConfig(seed)
	c.NumFiles = 8
	c.MeanFileSize = 32 << 10
	return c
}

func TestConfigValidation(t *testing.T) {
	if _, err := NewFS(Config{}); err == nil {
		t.Fatal("zero config must fail")
	}
	bad := DefaultConfig(1)
	bad.ModifyFraction = 1.5
	if _, err := NewFS(bad); err == nil {
		t.Fatal("fraction > 1 must fail")
	}
	neg := DefaultConfig(1)
	neg.EditsPerFile = -1
	if _, err := NewFS(neg); err == nil {
		t.Fatal("negative edits must fail")
	}
}

func TestStreamDeterministic(t *testing.T) {
	fs1, _ := NewFS(tinyConfig(42))
	fs2, _ := NewFS(tinyConfig(42))
	a := readAll(t, fs1.Stream())
	b := readAll(t, fs2.Stream())
	if !bytes.Equal(a, b) {
		t.Fatal("same seed must produce identical streams")
	}
	if len(a) == 0 {
		t.Fatal("empty stream")
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	fs1, _ := NewFS(tinyConfig(1))
	fs2, _ := NewFS(tinyConfig(2))
	if bytes.Equal(readAll(t, fs1.Stream()), readAll(t, fs2.Stream())) {
		t.Fatal("different seeds must differ")
	}
}

func TestStreamSizeMatchesLogical(t *testing.T) {
	fs, _ := NewFS(tinyConfig(7))
	want := fs.LogicalSize() + int64(fs.NumFiles())*64
	if got := int64(len(readAll(t, fs.Stream()))); got != want {
		t.Fatalf("stream bytes = %d, want %d", got, want)
	}
}

func TestStreamSnapshotIsolation(t *testing.T) {
	fs, _ := NewFS(tinyConfig(9))
	r := fs.Stream()
	before := fs.LogicalSize()
	fs.Mutate() // must not disturb the open reader
	got := int64(len(readAll(t, r)))
	if got != before+int64(8)*64 && got < before {
		t.Fatalf("open stream affected by mutation: got %d bytes", got)
	}
}

func TestMutatePreservesMostContent(t *testing.T) {
	fs, _ := NewFS(tinyConfig(11))
	gen0 := readAll(t, fs.Stream())
	fs.Mutate()
	gen1 := readAll(t, fs.Stream())
	if bytes.Equal(gen0, gen1) {
		t.Fatal("mutation must change something")
	}
	// Measure shared content the way the system will: CDC chunk both
	// streams and compare fingerprint sets. A 22% modify fraction must
	// leave the bulk of chunks shared.
	frac := chunkOverlap(t, gen0, gen1)
	if frac < 0.60 {
		t.Fatalf("only %.0f%% CDC chunk overlap after one mutation; churn too violent", frac*100)
	}
	if frac > 0.999 {
		t.Fatalf("%.2f%% overlap; mutation changed almost nothing", frac*100)
	}
}

// chunkOverlap returns the byte-weighted fraction of b's CDC chunks that
// also appear in a.
func chunkOverlap(t *testing.T, a, b []byte) float64 {
	t.Helper()
	seen := map[string]bool{}
	ca, _ := chunker.NewGear(bytes.NewReader(a), chunker.DefaultParams())
	for {
		ch, err := ca.Next()
		if err != nil {
			break
		}
		seen[string(ch)] = true
	}
	var common, total int64
	cb, _ := chunker.NewGear(bytes.NewReader(b), chunker.DefaultParams())
	for {
		ch, err := cb.Next()
		if err != nil {
			break
		}
		total += int64(len(ch))
		if seen[string(ch)] {
			common += int64(len(ch))
		}
	}
	return float64(common) / float64(total)
}

func TestGenerationCounter(t *testing.T) {
	fs, _ := NewFS(tinyConfig(3))
	if fs.Generation() != 0 {
		t.Fatal("fresh FS at generation 0")
	}
	fs.Mutate()
	fs.Mutate()
	if fs.Generation() != 2 {
		t.Fatalf("Generation = %d", fs.Generation())
	}
}

func TestManyGenerationsStayBounded(t *testing.T) {
	fs, _ := NewFS(tinyConfig(5))
	initial := fs.LogicalSize()
	for i := 0; i < 30; i++ {
		fs.Mutate()
	}
	final := fs.LogicalSize()
	if final <= 0 {
		t.Fatal("file system vanished")
	}
	// Size drifts (inserts vs deletes) but must stay within 4x band.
	if final > initial*4 || final < initial/4 {
		t.Fatalf("size drifted from %d to %d over 30 generations", initial, final)
	}
}

func TestFileSplitRegeneratesIdenticalBytes(t *testing.T) {
	// An overwrite edit in one file must leave bytes outside the edited
	// range untouched.
	cfg := tinyConfig(13)
	cfg.NumFiles = 1
	cfg.ModifyFraction = 1
	cfg.InsertFraction = 0
	cfg.DeleteRangeFrac = 0
	cfg.NewFileFraction = 0
	cfg.DeleteFileFraction = 0
	cfg.EditsPerFile = 1
	fs, _ := NewFS(cfg)
	before := readAll(t, fs.Stream())
	fs.Mutate()
	after := readAll(t, fs.Stream())
	if len(before) != len(after) {
		t.Fatalf("pure overwrites must preserve size: %d -> %d", len(before), len(after))
	}
	diff := 0
	for i := range before {
		if before[i] != after[i] {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("overwrite changed nothing")
	}
	maxChanged := int(float64(len(before)) * 0.9)
	if diff > maxChanged {
		t.Fatalf("overwrite touched %d of %d bytes; surrounding content corrupted", diff, len(before))
	}
}

func TestSingleSchedule(t *testing.T) {
	s, err := NewSingle(tinyConfig(17))
	if err != nil {
		t.Fatal(err)
	}
	b0 := s.Next()
	if b0.Gen != 0 || b0.Label != "g00" {
		t.Fatalf("first backup = %+v", b0)
	}
	data0 := readAll(t, b0.Stream)
	if int64(len(data0)) != b0.Size {
		t.Fatalf("declared size %d != stream size %d", b0.Size, len(data0))
	}
	b1 := s.Next()
	if b1.Gen != 1 {
		t.Fatalf("second backup gen = %d", b1.Gen)
	}
}

func TestMultiUserSchedule(t *testing.T) {
	m, err := NewMultiUser(5, tinyConfig(19))
	if err != nil {
		t.Fatal(err)
	}
	if m.Users() != 5 {
		t.Fatal("user count")
	}
	seen := map[string]bool{}
	for i := 0; i < 12; i++ {
		b := m.Next()
		if b.User != i%5 {
			t.Fatalf("backup %d user = %d, want %d (round-robin)", i, b.User, i%5)
		}
		wantGen := 0
		if i >= 5 {
			wantGen = (i-5)/5 + 1
		}
		if b.Gen != wantGen {
			t.Fatalf("backup %d gen = %d, want %d", i, b.Gen, wantGen)
		}
		if seen[b.Label] {
			t.Fatalf("duplicate label %s", b.Label)
		}
		seen[b.Label] = true
		if int64(len(readAll(t, b.Stream))) != b.Size {
			t.Fatalf("backup %d size mismatch", i)
		}
	}
}

func TestMultiUserRejectsZeroUsers(t *testing.T) {
	if _, err := NewMultiUser(0, tinyConfig(1)); err == nil {
		t.Fatal("want error")
	}
}

func TestUsersDiffer(t *testing.T) {
	m, _ := NewMultiUser(2, tinyConfig(23))
	a := readAll(t, m.Next().Stream)
	b := readAll(t, m.Next().Stream)
	if bytes.Equal(a, b) {
		t.Fatal("distinct users must have distinct content")
	}
}

func TestSmallReadsMatchLargeReads(t *testing.T) {
	fs1, _ := NewFS(tinyConfig(29))
	fs2, _ := NewFS(tinyConfig(29))
	big := readAll(t, fs1.Stream())
	r := fs2.Stream()
	var small []byte
	buf := make([]byte, 7) // odd size stresses word-phase logic
	for {
		n, err := r.Read(buf)
		small = append(small, buf[:n]...)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(big, small) {
		t.Fatal("read granularity changed stream bytes")
	}
}

func TestSharedFractionCreatesCrossUserRedundancy(t *testing.T) {
	cfg := tinyConfig(61)
	cfg.SharedFraction = 0.5
	m, err := NewMultiUser(2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	a := readAll(t, m.Next().Stream) // u0/g00
	b := readAll(t, m.Next().Stream) // u1/g00
	if frac := chunkOverlap(t, a, b); frac < 0.2 {
		t.Fatalf("cross-user overlap %.0f%% with 50%% shared files; want substantial", frac*100)
	}

	// Without sharing the users must be (nearly) disjoint.
	cfg.SharedFraction = 0
	m2, _ := NewMultiUser(2, cfg)
	a2 := readAll(t, m2.Next().Stream)
	b2 := readAll(t, m2.Next().Stream)
	if frac := chunkOverlap(t, a2, b2); frac > 0.05 {
		t.Fatalf("unshared users overlap %.0f%%", frac*100)
	}
}

func TestSharedFilesDivergeWithEdits(t *testing.T) {
	cfg := tinyConfig(67)
	cfg.SharedFraction = 1.0
	m, _ := NewMultiUser(2, cfg)
	// Skip the initial backups, advance both users a few generations.
	var a, b []byte
	for i := 0; i < 8; i++ {
		bk := m.Next()
		data := readAll(t, bk.Stream)
		if i == 6 {
			a = data
		}
		if i == 7 {
			b = data
		}
	}
	over := chunkOverlap(t, a, b)
	if over >= 0.999 {
		t.Fatal("shared files should diverge once users edit them")
	}
	if over < 0.1 {
		t.Fatalf("divergence too total (%.0f%% overlap left)", over*100)
	}
}

func TestShuffleOrderPreservesContentNotOrder(t *testing.T) {
	cfg := tinyConfig(71)
	cfg.ShuffleOrder = true
	cfg.MeanFileSize = 256 << 10 // interior chunks must dominate boundary chunks
	fs, _ := NewFS(cfg)
	a := readAll(t, fs.Stream())
	b := readAll(t, fs.Stream()) // same state, new shuffle
	if bytes.Equal(a, b) {
		t.Fatal("shuffled streams of >2 files should differ in order")
	}
	if len(a) != len(b) {
		t.Fatal("shuffling must not change total size")
	}
	// The content (CDC chunk set) must be mostly identical — only the
	// arrangement differs. Chunks straddling file boundaries legitimately
	// change (the chunker does not reset per file), so demand high but not
	// total overlap.
	if frac := chunkOverlap(t, a, b); frac < 0.75 {
		t.Fatalf("shuffle changed content: only %.0f%% chunk overlap", frac*100)
	}
}

func BenchmarkStreamGeneration(b *testing.B) {
	cfg := DefaultConfig(1)
	cfg.NumFiles = 16
	fs, err := NewFS(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(fs.LogicalSize())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := io.Copy(io.Discard, fs.Stream()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMutate(b *testing.B) {
	// Rebuild the file system periodically: thousands of mutations of one
	// FS grow its extent lists without bound (each edit splits extents),
	// which would make late iterations quadratically slow and measure
	// degenerate state no experiment ever reaches.
	cfg := DefaultConfig(2)
	fs, _ := NewFS(cfg)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if i%64 == 0 {
			b.StopTimer()
			fs, _ = NewFS(cfg)
			b.StartTimer()
		}
		fs.Mutate()
	}
}
