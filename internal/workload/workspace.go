package workload

import (
	"fmt"
	"math"
	"math/rand"
)

// WorkspaceConfig parameterizes the workspace scenario: many tenants, each
// owning several near-identical development workspaces, modeled on the helix
// ZFS dedup design (SNIPPETS.md snippet 1: 19M files, node_modules package
// copies at 16–32x refcounts, 11.5x effective savings).
//
// Each workspace is a directory tree of (a) dependency packages installed
// from a shared registry — identical bytes wherever the same package appears,
// across workspaces *and* tenants, which is where the cross-tenant global
// dedup comes from — and (b) per-workspace source files, unique to the
// workspace and edited over time. Package popularity is heavily skewed, so a
// handful of packages recur in nearly every workspace (the 16–32x refcounts)
// while the registry tail appears once or twice.
type WorkspaceConfig struct {
	Seed                 int64
	Tenants              int     // default 4
	WorkspacesPerTenant  int     // default 6
	PackagePool          int     // distinct packages in the registry (default 64)
	PackagesPerWorkspace int     // dependencies installed per workspace (default 12)
	MeanPackageSize      int64   // default 192 KiB
	SrcFilesPerWorkspace int     // default 6
	MeanSrcFileSize      int64   // default 24 KiB
	EditFraction         float64 // fraction of workspaces whose sources change per round (default 0.35)
	// UpgradeFraction is the per-round probability that one workspace bumps
	// one dependency to the next package version (re-keying that package
	// copy only). Default 0.1.
	UpgradeFraction float64
}

// DefaultWorkspaceConfig returns the standard workspace profile.
func DefaultWorkspaceConfig(seed int64) WorkspaceConfig {
	return WorkspaceConfig{
		Seed:                 seed,
		Tenants:              4,
		WorkspacesPerTenant:  6,
		PackagePool:          64,
		PackagesPerWorkspace: 12,
		MeanPackageSize:      192 << 10,
		SrcFilesPerWorkspace: 6,
		MeanSrcFileSize:      24 << 10,
		EditFraction:         0.35,
		UpgradeFraction:      0.1,
	}
}

func (c WorkspaceConfig) withDefaults() WorkspaceConfig {
	d := DefaultWorkspaceConfig(c.Seed)
	if c.Tenants <= 0 {
		c.Tenants = d.Tenants
	}
	if c.WorkspacesPerTenant <= 0 {
		c.WorkspacesPerTenant = d.WorkspacesPerTenant
	}
	if c.PackagePool <= 0 {
		c.PackagePool = d.PackagePool
	}
	if c.PackagesPerWorkspace <= 0 {
		c.PackagesPerWorkspace = d.PackagesPerWorkspace
	}
	if c.MeanPackageSize <= 0 {
		c.MeanPackageSize = d.MeanPackageSize
	}
	if c.SrcFilesPerWorkspace <= 0 {
		c.SrcFilesPerWorkspace = d.SrcFilesPerWorkspace
	}
	if c.MeanSrcFileSize <= 0 {
		c.MeanSrcFileSize = d.MeanSrcFileSize
	}
	if c.EditFraction == 0 {
		c.EditFraction = d.EditFraction
	}
	if c.UpgradeFraction == 0 {
		c.UpgradeFraction = d.UpgradeFraction
	}
	return c
}

func (c WorkspaceConfig) validate() error {
	if c.EditFraction < 0 || c.EditFraction > 1 || c.UpgradeFraction < 0 || c.UpgradeFraction > 1 {
		return fmt.Errorf("workload: workspace fractions out of [0,1] in %+v", c)
	}
	return nil
}

// pkgID/pkgSeed/pkgSize define the registry. A package's identity, bytes and
// size depend only on (cfg.Seed, index, version): two workspaces installing
// package 7 v0 produce bit-identical file bytes, headers included, no matter
// which tenant owns them — the property the dedup engine converts into
// refcounts.
func pkgID(p, version int) uint64 { return 0x706B<<40 | uint64(version)<<24 | uint64(p) }

func pkgSeed(seed int64, p, version int) int64 {
	return DeriveSeed(seed, "ws-pkg", int64(version)<<32|int64(p))
}

func pkgSize(seed int64, p int, mean int64) int64 {
	rng := rand.New(rand.NewSource(DeriveSeed(seed, "ws-pkg-size", int64(p))))
	return mean/4 + rng.Int63n(mean*9/4) + 1
}

// wsDep is one installed dependency of a workspace.
type wsDep struct {
	pkg     int
	version int
}

// wsSource is one per-workspace source file; edits bump version.
type wsSource struct {
	seed    int64
	size    int64
	version int64
}

// wsTree is one workspace's state.
type wsTree struct {
	deps []wsDep
	src  []wsSource
}

// Workspace is the workspace Schedule: tenants take turns round-robin; each
// Next() streams one tenant's full workspace tree at its current state,
// mutating the tenant's workspaces first on rounds after the initial one.
type Workspace struct {
	cfg     WorkspaceConfig
	tenants [][]wsTree
	rounds  []int // per-tenant round counter
	next    int
	count   int
}

// NewWorkspace builds the schedule. Workspace w of tenant t is derived from
// (Seed, t, w) alone, so growing Tenants or WorkspacesPerTenant leaves every
// existing tree byte-identical.
func NewWorkspace(cfg WorkspaceConfig) (*Workspace, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	ws := &Workspace{cfg: cfg, rounds: make([]int, cfg.Tenants)}
	for t := 0; t < cfg.Tenants; t++ {
		trees := make([]wsTree, cfg.WorkspacesPerTenant)
		for w := range trees {
			trees[w] = newTree(cfg, t, w)
		}
		ws.tenants = append(ws.tenants, trees)
	}
	return ws, nil
}

// newTree draws workspace (t, w): dependencies from the registry with a
// power-law popularity skew, plus its unique source files.
func newTree(cfg WorkspaceConfig, t, w int) wsTree {
	rng := rand.New(rand.NewSource(DeriveSeed(cfg.Seed, "ws-tree", int64(t)<<20|int64(w))))
	seen := make(map[int]bool)
	var tree wsTree
	for len(tree.deps) < cfg.PackagesPerWorkspace && len(seen) < cfg.PackagePool {
		// u^3 concentrates picks at low indices: the head of the registry
		// appears in nearly every workspace, the tail rarely.
		u := rng.Float64()
		p := int(math.Pow(u, 3) * float64(cfg.PackagePool))
		if p >= cfg.PackagePool {
			p = cfg.PackagePool - 1
		}
		if seen[p] {
			continue
		}
		seen[p] = true
		tree.deps = append(tree.deps, wsDep{pkg: p})
	}
	for i := 0; i < cfg.SrcFilesPerWorkspace; i++ {
		tree.src = append(tree.src, wsSource{
			seed: DeriveSeed(cfg.Seed, "ws-src", int64(t)<<40|int64(w)<<20|int64(i)),
			size: cfg.MeanSrcFileSize/4 + rng.Int63n(cfg.MeanSrcFileSize*9/4) + 1,
		})
	}
	return tree
}

// Tenants returns the tenant count.
func (s *Workspace) Tenants() int { return len(s.tenants) }

// mutate advances tenant t by one round of churn. Decisions derive from
// (Seed, t, round), independent of other tenants.
func (s *Workspace) mutate(t int) {
	cfg := s.cfg
	rng := rand.New(rand.NewSource(DeriveSeed(cfg.Seed, "ws-round", int64(t)<<24|int64(s.rounds[t]))))
	for w := range s.tenants[t] {
		tree := &s.tenants[t][w]
		if rng.Float64() < cfg.EditFraction && len(tree.src) > 0 {
			tree.src[rng.Intn(len(tree.src))].version++
		}
		if rng.Float64() < cfg.UpgradeFraction && len(tree.deps) > 0 {
			tree.deps[rng.Intn(len(tree.deps))].version++
		}
	}
}

// files flattens tenant t's workspaces into the framed file sequence.
func (s *Workspace) files(t int) []detFile {
	cfg := s.cfg
	var out []detFile
	for w := range s.tenants[t] {
		tree := &s.tenants[t][w]
		for _, d := range tree.deps {
			out = append(out, detFile{
				id:   pkgID(d.pkg, d.version),
				seed: pkgSeed(cfg.Seed, d.pkg, d.version),
				size: pkgSize(cfg.Seed, d.pkg, cfg.MeanPackageSize),
			})
		}
		for i, f := range tree.src {
			out = append(out, detFile{
				id:      uint64(t)<<40 | uint64(w)<<20 | uint64(i),
				seed:    f.seed,
				version: f.version,
				size:    f.size,
			})
		}
	}
	return out
}

// Next implements Schedule.
func (s *Workspace) Next() Backup {
	t := s.next
	if s.count >= len(s.tenants) { // every tenant's first backup is unmutated
		s.mutate(t)
		s.rounds[t]++
	}
	files := s.files(t)
	b := Backup{
		Label:  fmt.Sprintf("t%d/r%02d", t, s.rounds[t]),
		User:   t,
		Gen:    s.rounds[t],
		Size:   detStreamSize(files),
		Stream: newDetStream(files),
	}
	s.next = (s.next + 1) % len(s.tenants)
	s.count++
	return b
}

// NextRound returns one backup from every tenant, in tenant order.
func (s *Workspace) NextRound() []Backup {
	round := make([]Backup, len(s.tenants))
	for i := range round {
		round[i] = s.Next()
	}
	return round
}

var _ Schedule = (*Workspace)(nil)
