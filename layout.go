package repro

import (
	"fmt"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/engine/ddfs"
	"repro/internal/metrics"
	"repro/internal/workload"
)

// LayoutInfo quantifies the de-linearization of one backup's placement —
// the paper's §II-A concept made measurable. See internal/analysis for the
// underlying stack-distance machinery.
type LayoutInfo struct {
	Chunks            int
	Bytes             int64
	Fragments         int // Eq. 1's N
	ContainersTouched int
	ContainerSwitches int
	MeanRunBytes      float64
	MeanStackDistance float64
	// PredictedHitRate8 is the hit rate an 8-container LRU cache would
	// achieve over this backup's container reference sequence.
	PredictedHitRate8 float64
}

// Layout analyzes the backup's placement profile.
func (b *Backup) Layout() LayoutInfo {
	l := analysis.Analyze(b.recipe())
	return LayoutInfo{
		Chunks:            l.Chunks,
		Bytes:             l.Bytes,
		Fragments:         l.Fragments,
		ContainersTouched: l.ContainersTouched,
		ContainerSwitches: l.ContainerSwitches,
		MeanRunBytes:      l.MeanRunBytes,
		MeanStackDistance: l.MeanStackDistance(),
		PredictedHitRate8: l.PredictedHitRate(8),
	}
}

// RunLayoutAnalysis traces the de-linearization of data placement,
// generation by generation, under DDFS-Like and DeFrag: fragments (Eq. 1's
// N), distinct containers, mean LRU stack distance of the container
// reference sequence, and the hit rate that profile predicts for the
// engines' locality-preserved cache. It is the paper's §II argument as a
// table.
func RunLayoutAnalysis(cfg ExperimentConfig) (*FigureResult, error) {
	cfg = cfg.withDefaults()
	expected, lpc, _ := cfg.sizing(1, cfg.Generations)

	dcfg0 := ddfs.DefaultConfig(expected)
	dcfg0.LPCContainers = lpc
	dd, err := ddfs.New(dcfg0)
	if err != nil {
		return nil, err
	}
	dcfg := core.DefaultConfig(expected)
	dcfg.Alpha = cfg.Alpha
	dcfg.LPCContainers = lpc
	de, err := core.New(dcfg)
	if err != nil {
		return nil, err
	}
	sdd, err := workload.NewSingle(cfg.workloadConfig())
	if err != nil {
		return nil, err
	}
	sde, err := workload.NewSingle(cfg.workloadConfig())
	if err != nil {
		return nil, err
	}

	res := &FigureResult{
		Figure: "Layout analysis",
		Title:  fmt.Sprintf("De-linearization of placement (LRU stack profile; predicted hit rate at LPC=%d)", lpc),
		Columns: []string{"gen",
			"ddfs_frags", "ddfs_ctrs", "ddfs_stackdist", "ddfs_hitrate",
			"defrag_frags", "defrag_ctrs", "defrag_stackdist", "defrag_hitrate"},
		Summary: map[string]float64{},
	}

	analyzeNext := func(eng engine.Engine, sched workload.Schedule) (*analysis.Layout, error) {
		_, b, err := ingest(eng, sched)
		if err != nil {
			return nil, err
		}
		return analysis.Analyze(b.recipe()), nil
	}

	var lastDD, lastDE *analysis.Layout
	for g := 0; g < cfg.Generations; g++ {
		ld, err := analyzeNext(dd, sdd)
		if err != nil {
			return nil, err
		}
		le, err := analyzeNext(de, sde)
		if err != nil {
			return nil, err
		}
		lastDD, lastDE = ld, le
		res.Rows = append(res.Rows, []string{
			fmt.Sprint(g + 1),
			fmt.Sprint(ld.Fragments), fmt.Sprint(ld.ContainersTouched),
			metrics.F1(ld.MeanStackDistance()), metrics.F3(ld.PredictedHitRate(lpc)),
			fmt.Sprint(le.Fragments), fmt.Sprint(le.ContainersTouched),
			metrics.F1(le.MeanStackDistance()), metrics.F3(le.PredictedHitRate(lpc)),
		})
	}
	res.Summary["ddfs_final_hitrate"] = lastDD.PredictedHitRate(lpc)
	res.Summary["defrag_final_hitrate"] = lastDE.PredictedHitRate(lpc)
	res.Summary["ddfs_final_stackdist"] = lastDD.MeanStackDistance()
	res.Summary["defrag_final_stackdist"] = lastDE.MeanStackDistance()
	return res, nil
}
