package repro

import (
	"bytes"
	"context"
	"fmt"
	"path/filepath"
	"time"

	"repro/internal/blockstore"
	"repro/internal/chunk"
	"repro/internal/cindex"
	"repro/internal/maintenance"
	"repro/internal/trace"
)

// MaintenanceOptions configures the store's online maintenance layer (see
// internal/maintenance): the background reverse-rewriting re-dedup pass and
// crash-safe container merging that run under live traffic.
type MaintenanceOptions struct {
	// Enabled starts the layer with the store. When false, maintenance
	// epochs can still be run manually through MaintenanceEpoch.
	Enabled bool
	// Interval is the wall-clock period of the background scheduler.
	// 0 disables the timer: epochs run only on demand (MaintenanceEpoch,
	// POST /v1/maintenance).
	Interval time.Duration
	// UtilThreshold is the live fraction below which a sealed container is
	// merged away (and reverse-remapped from). Default 0.5.
	UtilThreshold float64
	// FillThreshold marks under-filled containers (stream tails) as
	// reverse-remap candidates. Default 0.5.
	FillThreshold float64
	// SparseThreshold merges containers the latest backup references for
	// less than this fraction of their data. Default 0.25.
	SparseThreshold float64
	// MaxBatch bounds the containers merged per epoch. Default 8.
	MaxBatch int
	// ThrottleMBps paces maintenance data movement (wall clock). 0 = off.
	ThrottleMBps float64
	// NoRededup disables the out-of-line re-dedup of spilled (write-through)
	// stream references. By default every epoch remaps spilled copies back
	// onto their index-authoritative originals so the inline filter's
	// deferred duplicates are reclaimed; stores that never spill pay nothing
	// for the scan. See Options.Filter.
	NoRededup bool
}

// MaintenanceStats mirrors one epoch's (or the cumulative) maintenance
// counters for the public API and the stats endpoint.
type MaintenanceStats struct {
	RecipesScanned   int     `json:"recipesScanned"`
	RefsRemapped     int64   `json:"refsRemapped"`
	RefsRededuped    int64   `json:"refsRededuped"`
	ContainersMerged int     `json:"containersMerged"`
	ChunksMoved      int64   `json:"chunksMoved"`
	BytesMoved       int64   `json:"bytesMoved"`
	BytesReclaimed   int64   `json:"bytesReclaimed"`
	RefsPatched      int64   `json:"refsPatched"`
	VictimsSkipped   int     `json:"victimsSkipped"`
	SimSeconds       float64 `json:"simSeconds"`
}

func fromMaintStats(st maintenance.Stats) MaintenanceStats {
	return MaintenanceStats{
		RecipesScanned:   st.RecipesScanned,
		RefsRemapped:     st.RefsRemapped,
		RefsRededuped:    st.RefsRededuped,
		ContainersMerged: st.ContainersMerged,
		ChunksMoved:      st.ChunksMoved,
		BytesMoved:       st.BytesMoved,
		BytesReclaimed:   st.BytesReclaimed,
		RefsPatched:      st.RefsPatched,
		VictimsSkipped:   st.VictimsSkipped,
		SimSeconds:       st.SimSeconds,
	}
}

// MaintenanceReport is the maintenance section of the store's statistics:
// cumulative pass counters plus the current dead-byte accounting.
type MaintenanceReport struct {
	// Supported is false for engines without an exposed chunk index.
	Supported bool `json:"supported"`
	// Enabled reports whether the background layer was opened with the
	// store (scheduler or manual-only).
	Enabled bool             `json:"enabled"`
	Epochs  int              `json:"epochs"`
	Totals  MaintenanceStats `json:"totals"`
	// StoredBytes/DeadBytes/DeadFraction is the current garbage accounting
	// (see ForgetResult); CompactRecommended mirrors the Forget heuristic.
	StoredBytes        int64   `json:"storedBytes"`
	DeadBytes          int64   `json:"deadBytes"`
	DeadFraction       float64 `json:"deadFraction"`
	CompactRecommended bool    `json:"compactRecommended"`
}

// compactRecommendThreshold is the dead-byte fraction above which Forget
// and the stats endpoint recommend running a compaction pass.
const compactRecommendThreshold = 0.2

// ForgetResult reports what a Forget freed logically and whether the
// physical garbage it stranded makes a compaction pass worthwhile.
type ForgetResult struct {
	// Found is false when no retained backup had the label.
	Found bool `json:"found"`
	// StoredBytes is the store's physical chunk-data footprint.
	StoredBytes int64 `json:"storedBytes"`
	// DeadBytes estimates how much of that footprint is no longer live:
	// neither referenced by a retained recipe nor the index's current copy
	// of its chunk.
	DeadBytes int64 `json:"deadBytes"`
	// DeadFraction is DeadBytes/StoredBytes (0 when the store is empty).
	DeadFraction float64 `json:"deadFraction"`
	// CompactRecommended is true when DeadFraction crosses the
	// recommendation threshold (20%).
	CompactRecommended bool `json:"compactRecommended"`
}

// storeGate adapts the store's maintenance gate to maintenance.Gate: fn
// runs with no foreground ingest or restore in flight.
type storeGate struct{ s *Store }

func (g storeGate) Exclusive(fn func() error) error {
	g.s.maintMu.Lock()
	defer g.s.maintMu.Unlock()
	return fn()
}

// storeRecipes adapts the retained-backup set to maintenance.RecipeStore.
type storeRecipes struct{ s *Store }

func (r storeRecipes) Snapshot() []*chunk.Recipe { return r.s.snapshotRecipes() }

// Replace durably rewrites the recipe files of the updated backups, then
// swaps the in-memory recipe pointers. Restores in flight keep the
// snapshot they loaded; new restores see the remapped recipes.
func (r storeRecipes) Replace(ctx context.Context, updated []*chunk.Recipe) error {
	s := r.s
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, u := range updated {
		if err := ctx.Err(); err != nil {
			return err
		}
		for _, b := range s.backups {
			if b.Label != u.Label {
				continue
			}
			if s.durable() && b.recipeFile != "" {
				var buf bytes.Buffer
				if err := trace.Save(&buf, u); err != nil {
					return err
				}
				path := filepath.Join(s.opts.Dir, recipeDirName, b.recipeFile)
				if err := blockstore.WriteFileAtomic(path, buf.Bytes(), 0o644); err != nil {
					return fmt.Errorf("repro: persisting remapped recipe %q: %w", b.Label, err)
				}
			}
			b.rec.Store(u)
			break
		}
	}
	return nil
}

// indexed is the engine capability maintenance (and Compact) needs.
type indexed interface{ Index() *cindex.Index }

// maintenancePass lazily builds the store's maintenance pass. Caller holds
// maintOpMu.
func (s *Store) maintenancePass() (*maintenance.Pass, error) {
	if s.maintPass != nil {
		return s.maintPass, nil
	}
	eng, ok := s.eng.(indexed)
	if !ok {
		return nil, fmt.Errorf("repro: engine %s does not support maintenance (no chunk index)", s.eng.Name())
	}
	m := s.opts.Maintenance
	cfg := maintenance.Config{
		Containers:      s.eng.Containers(),
		Index:           eng.Index(),
		Recipes:         storeRecipes{s},
		Gate:            storeGate{s},
		Clock:           s.eng.Clock(),
		UtilThreshold:   m.UtilThreshold,
		FillThreshold:   m.FillThreshold,
		SparseThreshold: m.SparseThreshold,
		MaxBatch:        m.MaxBatch,
		ThrottleMBps:    m.ThrottleMBps,
		Rededup:         !m.NoRededup,
	}
	if d, ok := s.eng.(maintenance.IndexDropper); ok {
		cfg.Dropper = d
	}
	p, err := maintenance.New(cfg)
	if err != nil {
		return nil, err
	}
	s.maintPass = p
	return p, nil
}

// initMaintenance wires the maintenance layer at Open when
// Options.Maintenance.Enabled is set: the pass is built eagerly (so
// configuration errors surface at Open) and the background scheduler is
// started when an interval is configured.
func (s *Store) initMaintenance() error {
	s.maintOpMu.Lock()
	defer s.maintOpMu.Unlock()
	if _, err := s.maintenancePass(); err != nil {
		return err
	}
	if s.opts.Maintenance.Interval > 0 {
		s.maintLoop = maintenance.NewScheduler(s.opts.Maintenance.Interval, s.runMaintenanceEpoch)
	}
	return nil
}

// runMaintenanceEpoch executes one epoch under the operation mutex and
// folds its counters into the cumulative totals.
func (s *Store) runMaintenanceEpoch(ctx context.Context) (maintenance.Stats, error) {
	s.maintOpMu.Lock()
	defer s.maintOpMu.Unlock()
	s.mu.RLock()
	closed := s.closed
	s.mu.RUnlock()
	if closed {
		return maintenance.Stats{}, fmt.Errorf("repro: store is closed")
	}
	p, err := s.maintenancePass()
	if err != nil {
		return maintenance.Stats{}, err
	}
	st, err := p.RunEpoch(ctx)
	s.maintStatMu.Lock()
	s.maintTotal.Add(st)
	s.maintEpochs++
	s.maintStatMu.Unlock()
	return st, err
}

// MaintenanceEpoch runs one maintenance epoch now: reverse remap, victim
// selection, merge, and the gated crash-safe drop commit. It is safe to
// call under live traffic (only the final commit briefly excludes
// foreground streams) and serializes against the background scheduler and
// Compact. Engines without a chunk index do not support maintenance.
func (s *Store) MaintenanceEpoch(ctx context.Context) (MaintenanceStats, error) {
	st, err := s.runMaintenanceEpoch(ctx)
	return fromMaintStats(st), err
}

// deadScan estimates the store's physical garbage: sealed-container data
// bytes that are neither pinned by a retained recipe nor the index's
// current copy of their chunk. For engines without an index it falls back
// to the containers' superseded-bytes accounting.
func (s *Store) deadScan() (stored, dead int64) {
	cs := s.eng.Containers()
	eng, ok := s.eng.(indexed)
	if !ok {
		return cs.StoredBytes(), cs.DeadBytes()
	}
	total, live := maintenance.DeadScan(cs, eng.Index(), s.snapshotRecipes())
	return total, total - live
}

// MaintenanceReport returns the maintenance section of the store's
// statistics: cumulative counters plus the current dead-byte accounting.
func (s *Store) MaintenanceReport() MaintenanceReport {
	_, supported := s.eng.(indexed)
	s.maintStatMu.Lock()
	totals := s.maintTotal
	epochs := s.maintEpochs
	s.maintStatMu.Unlock()
	stored, dead := s.deadScan()
	rep := MaintenanceReport{
		Supported:   supported,
		Enabled:     s.opts.Maintenance.Enabled,
		Epochs:      epochs,
		Totals:      fromMaintStats(totals),
		StoredBytes: stored,
		DeadBytes:   dead,
	}
	if stored > 0 {
		rep.DeadFraction = float64(dead) / float64(stored)
		rep.CompactRecommended = rep.DeadFraction >= compactRecommendThreshold
	}
	return rep
}
