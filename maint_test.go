package repro

import (
	"bytes"
	"context"
	"fmt"
	"sync"
	"testing"
	"time"
)

// maintOptions returns aggressive maintenance thresholds that fire on the
// small stores these tests build.
func maintOptions() MaintenanceOptions {
	return MaintenanceOptions{
		UtilThreshold:   0.9,
		FillThreshold:   0.9,
		SparseThreshold: 0.5,
		MaxBatch:        64,
	}
}

func TestMaintenanceEpochKeepsBackupsRestorable(t *testing.T) {
	s, err := Open(Options{Engine: DeFrag, Alpha: 0.3, StoreData: true,
		ExpectedBytes: 64 << 20, Maintenance: maintOptions()})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	datas := ingestGens(t, s, 71, 8)

	var total MaintenanceStats
	for i := 0; i < 3; i++ {
		st, err := s.MaintenanceEpoch(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		total.RefsRemapped += st.RefsRemapped
		total.ContainersMerged += st.ContainersMerged
	}
	if total.RefsRemapped == 0 && total.ContainersMerged == 0 {
		t.Fatalf("aggressive epochs over a churning workload did no work: %+v", total)
	}
	restoreVerifyAll(t, s, datas)
	rep, err := s.Check(context.Background(), true)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("store not fsck-clean after maintenance: %v", rep.Problems)
	}
	// The engine must keep working after merges: one more backup+restore.
	more := ingestGens(t, s, 72, 1)
	restoreVerifyAll(t, s, append(datas, more...))
	mr := s.MaintenanceReport()
	if !mr.Supported || mr.Epochs != 3 {
		t.Fatalf("maintenance report: %+v", mr)
	}
}

func TestMaintenanceConcurrentWithRestores(t *testing.T) {
	// Restores running while epochs remap recipes and drop containers must
	// stay byte-identical: each restore works from the recipe snapshot it
	// started with, and the drop commit waits them out. Run under -race in
	// CI, this also pins the atomic recipe swap as race-clean.
	s, err := Open(Options{Engine: DeFrag, Alpha: 0.3, StoreData: true,
		ExpectedBytes: 64 << 20, Maintenance: maintOptions()})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	datas := ingestGens(t, s, 73, 6)
	backups := s.Backups()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				g := (w + i) % len(backups)
				var buf bytes.Buffer
				if _, err := s.Restore(context.Background(), backups[g], &buf, true); err != nil {
					errs <- err
					return
				}
				if !bytes.Equal(buf.Bytes(), datas[g]) {
					errs <- fmt.Errorf("generation %d restored %d bytes not matching ingest", g, buf.Len())
					return
				}
			}
		}(w)
	}

	var worked bool
	for i := 0; i < 4; i++ {
		st, err := s.MaintenanceEpoch(context.Background())
		if err != nil {
			close(stop)
			wg.Wait()
			t.Fatal(err)
		}
		if st.RefsRemapped > 0 || st.ContainersMerged > 0 {
			worked = true
		}
		time.Sleep(10 * time.Millisecond) // let restores interleave
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatalf("concurrent restore failed or returned wrong bytes: %v", err)
	default:
	}
	if !worked {
		t.Fatal("no epoch did any work; the concurrency test exercised nothing")
	}
	restoreVerifyAll(t, s, datas)
}

func TestMaintenanceSchedulerRunsEpochs(t *testing.T) {
	mo := maintOptions()
	mo.Enabled = true
	mo.Interval = 20 * time.Millisecond
	s, err := Open(Options{Engine: DeFrag, Alpha: 0.3, StoreData: true,
		ExpectedBytes: 64 << 20, Maintenance: mo})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	datas := ingestGens(t, s, 74, 5)
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if s.MaintenanceReport().Epochs > 0 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if s.MaintenanceReport().Epochs == 0 {
		t.Fatal("background scheduler never ran an epoch")
	}
	restoreVerifyAll(t, s, datas)
}

func TestMaintenanceUnsupportedEngine(t *testing.T) {
	s, err := Open(Options{Engine: SiLoLike, ExpectedBytes: 16 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.MaintenanceEpoch(context.Background()); err == nil {
		t.Fatal("index-less engine must refuse maintenance")
	}
	if s.MaintenanceReport().Supported {
		t.Fatal("index-less engine reported maintenance support")
	}
	// Opening with the layer enabled must fail loudly, not silently no-op.
	mo := maintOptions()
	mo.Enabled = true
	if _, err := Open(Options{Engine: SiLoLike, ExpectedBytes: 16 << 20, Maintenance: mo}); err == nil {
		t.Fatal("Open with maintenance enabled on an index-less engine must fail")
	}
}

func TestForgetReportsDeadBytes(t *testing.T) {
	s, err := Open(Options{Engine: DeFrag, Alpha: 0.1, StoreData: true, ExpectedBytes: 64 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ingestGens(t, s, 75, 5)

	if res := s.Forget("nope"); res.Found {
		t.Fatal("Forget of unknown label reported Found")
	}
	res := s.Forget(s.Backups()[0].Label)
	if !res.Found {
		t.Fatal("Forget failed")
	}
	if res.StoredBytes <= 0 {
		t.Fatalf("no stored-byte accounting: %+v", res)
	}
	if res.DeadBytes < 0 || res.DeadFraction < 0 || res.DeadFraction > 1 {
		t.Fatalf("implausible dead-byte accounting: %+v", res)
	}
	if res.CompactRecommended != (res.DeadFraction >= 0.2) {
		t.Fatalf("recommendation inconsistent with fraction: %+v", res)
	}
	// Forgetting every generation leaves only index-authoritative copies:
	// the dead fraction must not shrink as pins disappear.
	before := res.DeadFraction
	for _, b := range s.Backups() {
		res = s.Forget(b.Label)
	}
	if res.DeadFraction < before {
		t.Fatalf("dead fraction shrank as retention dropped: %v -> %v", before, res.DeadFraction)
	}
}

func TestMaintenanceDurableAcrossReopen(t *testing.T) {
	// Epochs on a durable store: remapped recipes and the WAL'd container
	// drops must survive Close and reopen with every backup bit-identical.
	dir := t.TempDir()
	open := func() *Store {
		s, err := Open(Options{Engine: DeFrag, Alpha: 0.3, StoreData: true,
			ExpectedBytes: 64 << 20, Backend: FileBackend, Dir: dir, Maintenance: maintOptions()})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	s := open()
	datas := ingestGens(t, s, 76, 6)
	var merged int
	for i := 0; i < 3; i++ {
		st, err := s.MaintenanceEpoch(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		merged += st.ContainersMerged
	}
	restoreVerifyAll(t, s, datas)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	re := open()
	defer re.Close()
	if got := len(re.Backups()); got != len(datas) {
		t.Fatalf("reopen lost backups: %d, want %d", got, len(datas))
	}
	restoreVerifyAll(t, re, datas)
	rep, err := re.Check(context.Background(), true)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("reopened store not fsck-clean after maintenance: %v", rep.Problems)
	}
	if merged == 0 {
		t.Log("note: no containers merged this run; durability still verified")
	}
}
