package repro

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/workload"
)

// MaintPoint is one generation of the maintenance benchmark: the latest
// backup restored from two stores that ingested the identical stream, one
// left alone and one running a maintenance epoch after every generation.
type MaintPoint struct {
	Gen   int    `json:"gen"` // 1-based generation number
	Label string `json:"label"`
	Bytes int64  `json:"bytes"`

	// Baseline store: no maintenance.
	BaseMBps  float64 `json:"base_MBps"` // simulated restore throughput of the latest backup
	BaseReads int64   `json:"base_reads"`

	// Maintained store: one epoch after each generation.
	MaintMBps  float64 `json:"maint_MBps"`
	MaintReads int64   `json:"maint_reads"`

	// Gain is maintained over baseline restore throughput (>1 = faster).
	Gain float64 `json:"gain"`

	// Epoch counters for the pass that ran after this generation.
	RefsRemapped     int64 `json:"refs_remapped"`
	ContainersMerged int   `json:"containers_merged"`
	BytesReclaimed   int64 `json:"bytes_reclaimed"`
}

// MaintBench is the full maintenance benchmark, serialized to
// BENCH_PR9.json: the restore-of-latest throughput curve with and without
// the online maintenance pass, plus the end-state integrity verdicts.
type MaintBench struct {
	Engine      string             `json:"engine"`
	Generations int                `json:"generations"`
	Alpha       float64            `json:"alpha"`
	Options     MaintenanceOptions `json:"maintenance"`
	Points      []MaintPoint       `json:"points"`

	// Final-generation headline: the paper-style payoff of reverse
	// rewriting is the latest backup's restore speed late in the chain.
	FinalBaseMBps  float64 `json:"final_base_MBps"`
	FinalMaintMBps float64 `json:"final_maint_MBps"`
	FinalGain      float64 `json:"final_gain"`

	TotalRefsRemapped     int64 `json:"total_refs_remapped"`
	TotalContainersMerged int   `json:"total_containers_merged"`
	TotalBytesReclaimed   int64 `json:"total_bytes_reclaimed"`

	// VerifiedBitIdentical is true when every generation restored from the
	// maintained store matched the SHA-256 pinned at ingest; FsckClean is
	// the maintained store's full data-verify check after all epochs.
	VerifiedBitIdentical bool `json:"verified_bit_identical"`
	FsckClean            bool `json:"fsck_clean"`
}

// maintBenchRestore measures a serial LRU restore of b — the most
// locality-sensitive strategy, so container-layout improvements show
// directly in the simulated throughput.
func maintBenchRestore(s *Store, b *Backup) (RestoreStats, error) {
	return s.RestoreWith(context.Background(), b, nil, RestoreOptions{Policy: RestoreLRU, Workers: 1})
}

// RunMaintBench ingests the same seeded mutating workload into two DeFrag
// stores and lets only one of them run maintenance epochs between
// generations. After every generation it restores the latest backup from
// both and records the simulated throughput, so the output is the
// restore-of-latest curve with and without the pass. At the end every
// generation is restored from the maintained store and compared against the
// SHA-256 digest pinned at ingest, and the store is fsck'd with full data
// verification — the benchmark refuses to report a gain that was bought
// with correctness.
func RunMaintBench(cfg ExperimentConfig, mo MaintenanceOptions) (*MaintBench, error) {
	cfg = cfg.withDefaults()
	if mo.UtilThreshold == 0 {
		mo.UtilThreshold = 0.6
	}
	if mo.SparseThreshold == 0 {
		mo.SparseThreshold = 0.5
	}
	if mo.MaxBatch == 0 {
		mo.MaxBatch = 16
	}
	open := func() (*Store, error) {
		return Open(Options{
			Engine:        DeFrag,
			Alpha:         cfg.Alpha,
			StoreData:     true,
			ExpectedBytes: cfg.perGenBytes() * int64(cfg.Generations),
			Workers:       cfg.Workers,
			Maintenance:   mo,
		})
	}
	base, err := open()
	if err != nil {
		return nil, err
	}
	defer base.Close() //nolint:errcheck // bench teardown
	maint, err := open()
	if err != nil {
		return nil, err
	}
	defer maint.Close() //nolint:errcheck // bench teardown

	sched, err := workload.NewSingle(cfg.workloadConfig())
	if err != nil {
		return nil, err
	}
	bench := &MaintBench{
		Engine:      DeFrag.String(),
		Generations: cfg.Generations,
		Alpha:       cfg.Alpha,
		Options:     mo,
	}
	ctx := context.Background()
	var digests [][32]byte
	var labels []string
	for g := 0; g < cfg.Generations; g++ {
		bk := sched.Next()
		data, err := io.ReadAll(bk.Stream)
		if err != nil {
			return nil, err
		}
		digests = append(digests, sha256.Sum256(data))
		labels = append(labels, bk.Label)
		bb, err := base.Backup(ctx, bk.Label, bytes.NewReader(data))
		if err != nil {
			return nil, err
		}
		mb, err := maint.Backup(ctx, bk.Label, bytes.NewReader(data))
		if err != nil {
			return nil, err
		}
		ep, err := maint.MaintenanceEpoch(ctx)
		if err != nil {
			return nil, err
		}

		bst, err := maintBenchRestore(base, bb)
		if err != nil {
			return nil, err
		}
		mst, err := maintBenchRestore(maint, mb)
		if err != nil {
			return nil, err
		}
		pt := MaintPoint{
			Gen:              g + 1,
			Label:            bk.Label,
			Bytes:            bst.Bytes,
			BaseMBps:         bst.ThroughputMBps(),
			BaseReads:        bst.ContainerReads,
			MaintMBps:        mst.ThroughputMBps(),
			MaintReads:       mst.ContainerReads,
			RefsRemapped:     ep.RefsRemapped,
			ContainersMerged: ep.ContainersMerged,
			BytesReclaimed:   ep.BytesReclaimed,
		}
		if pt.BaseMBps > 0 {
			pt.Gain = pt.MaintMBps / pt.BaseMBps
		}
		bench.Points = append(bench.Points, pt)
		bench.TotalRefsRemapped += ep.RefsRemapped
		bench.TotalContainersMerged += ep.ContainersMerged
		bench.TotalBytesReclaimed += ep.BytesReclaimed
		if g == cfg.Generations-1 {
			bench.FinalBaseMBps = pt.BaseMBps
			bench.FinalMaintMBps = pt.MaintMBps
			bench.FinalGain = pt.Gain
		}
	}

	// Integrity: every generation from the maintained store, bit-identical
	// to what was ingested, and a full data-verify fsck.
	bench.VerifiedBitIdentical = true
	for i, b := range maint.Backups() {
		h := sha256.New()
		if _, err := maint.Restore(ctx, b, h, true); err != nil {
			return nil, fmt.Errorf("maintbench: restoring %s after epochs: %w", b.Label, err)
		}
		if b.Label != labels[i] || !bytes.Equal(h.Sum(nil), digests[i][:]) {
			bench.VerifiedBitIdentical = false
		}
	}
	rep, err := maint.Check(ctx, true)
	if err != nil {
		return nil, err
	}
	bench.FsckClean = rep.OK()
	return bench, nil
}

// WriteMaintBenchJSON serializes the benchmark result as indented JSON.
func WriteMaintBenchJSON(w io.Writer, b *MaintBench) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(b)
}
