package repro

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	"repro/internal/workload"
)

// MultiStreamPoint is one concurrency level of the multi-stream scaling
// benchmark: the same multi-user backup schedule ingested into a fresh
// store with Streams backups in flight per round.
type MultiStreamPoint struct {
	Engine       string  `json:"engine"`
	Streams      int     `json:"streams"` // concurrent backups per round
	Rounds       int     `json:"rounds"`
	Backups      int     `json:"backups"`
	LogicalBytes int64   `json:"logical_bytes"`
	UniqueBytes  int64   `json:"unique_bytes"`
	DedupedBytes int64   `json:"deduped_bytes"`
	WallSeconds  float64 `json:"wall_s"`
	SimSeconds   float64 `json:"sim_s"`
	// Speedups are relative to the first (serial) level. WallSpeedup is
	// real elapsed time and depends on the host's core count; SimSpeedup is
	// the modeled slowest-lane-per-round improvement and is host-independent.
	WallSpeedup float64 `json:"wall_speedup"`
	SimSpeedup  float64 `json:"sim_speedup"`
}

// MultiStreamBench is the full scaling sweep, serialized to BENCH_PR2.json.
type MultiStreamBench struct {
	Engine     string             `json:"engine"`
	Users      int                `json:"users"`
	Rounds     int                `json:"rounds"`
	GOMAXPROCS int                `json:"gomaxprocs"` // wall speedup is bounded by this
	Points     []MultiStreamPoint `json:"points"`
}

// RunMultiStreamBench ingests the multi-user workload at each of the given
// concurrency levels (default 1, 2, 4, 8), each into a fresh store of the
// given engine kind, and reports wall-clock and simulated-time scaling.
// Every level replays the identical schedule (same seed, same rounds), so
// the levels differ only in how many of a round's streams run at once.
func RunMultiStreamBench(cfg ExperimentConfig, kind EngineKind, levels []int) (*MultiStreamBench, error) {
	cfg = cfg.withDefaults()
	if len(levels) == 0 {
		levels = []int{1, 2, 4, 8}
	}
	users := cfg.Users
	for _, l := range levels {
		if l > users {
			users = l // an 8-way level needs 8 streams per round
		}
	}
	rounds := cfg.Backups / users
	if rounds < 1 {
		rounds = 1
	}
	bench := &MultiStreamBench{
		Engine:     kind.String(),
		Users:      users,
		Rounds:     rounds,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	var baseWall, baseSim float64
	for li, level := range levels {
		workers := cfg.Workers
		if workers == 0 {
			workers = level // scale the fingerprinting pool with the stream count
		}
		store, err := Open(Options{
			Engine:        kind,
			Alpha:         cfg.Alpha,
			ExpectedBytes: cfg.perGenBytes() * int64(users*rounds),
			Workers:       workers,
		})
		if err != nil {
			return nil, err
		}
		sched, err := workload.NewMultiUser(users, cfg.workloadConfig())
		if err != nil {
			return nil, err
		}
		pt := MultiStreamPoint{
			Engine:  kind.String(),
			Streams: level,
			Rounds:  rounds,
			Backups: users * rounds,
		}
		wallStart := time.Now()
		for r := 0; r < rounds; r++ {
			round := sched.NextRound()
			inputs := make([]StreamInput, len(round))
			for i, bk := range round {
				inputs[i] = StreamInput{Label: bk.Label, Stream: bk.Stream}
			}
			_, merged, err := store.BackupStreams(context.Background(), inputs, level)
			if err != nil {
				return nil, fmt.Errorf("level %d round %d: %w", level, r, err)
			}
			pt.LogicalBytes += merged.LogicalBytes
			pt.UniqueBytes += merged.UniqueBytes
			pt.DedupedBytes += merged.DedupedBytes
		}
		pt.WallSeconds = time.Since(wallStart).Seconds()
		pt.SimSeconds = store.SimulatedTime().Seconds()
		if li == 0 {
			baseWall, baseSim = pt.WallSeconds, pt.SimSeconds
		}
		if pt.WallSeconds > 0 {
			pt.WallSpeedup = baseWall / pt.WallSeconds
		}
		if pt.SimSeconds > 0 {
			pt.SimSpeedup = baseSim / pt.SimSeconds
		}
		bench.Points = append(bench.Points, pt)
	}
	return bench, nil
}

// WriteMultiStreamJSON serializes the benchmark result as indented JSON.
func WriteMultiStreamJSON(w io.Writer, b *MultiStreamBench) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(b)
}
