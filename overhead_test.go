package repro

import (
	"bytes"
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/telemetry"
)

// ingestOnce opens a fresh in-memory store, ingests data once, and returns
// the wall time of the IngestStream call alone.
func ingestOnce(t testing.TB, data []byte) time.Duration {
	t.Helper()
	store, err := Open(Options{Engine: DeFrag, Alpha: 0.1, ExpectedBytes: 64 << 20, StoreData: true})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close() //nolint:errcheck // test teardown
	start := time.Now()
	if _, err := store.IngestStream(context.Background(), "bench/gen0", bytes.NewReader(data)); err != nil {
		t.Fatal(err)
	}
	return time.Since(start)
}

// tracingOverheadBound is the documented ceiling on span-tracing overhead:
// ingest with tracing on must stay within 2× of ingest with tracing off.
// The real overhead is a handful of spans per request (an allocation, two
// time.Now calls and a histogram observe each), i.e. far below the bound;
// 2× leaves room for scheduler noise on shared CI runners while still
// catching a regression that puts per-chunk work on the span path.
const tracingOverheadBound = 2.0

// TestTracingOverheadGuard is the perf gate for the observability layer:
// leaving tracing on may not cost more than tracingOverheadBound× ingest
// wall time. Stage counters are always on in both arms — they are the
// documented always-on layer, and this test would catch them growing a lock
// or an allocation too.
func TestTracingOverheadGuard(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test; skipped in -short")
	}
	data := randStream(4<<20, 99)
	minWall := func(on bool) time.Duration {
		prev := telemetry.SetTracing(on)
		defer telemetry.SetTracing(prev)
		best := time.Duration(1<<63 - 1)
		for i := 0; i < 3; i++ {
			if d := ingestOnce(t, data); d < best {
				best = d
			}
		}
		return best
	}
	off := minWall(false)
	on := minWall(true)
	ratio := float64(on) / float64(off)
	t.Logf("ingest 4 MiB: tracing off %v, on %v, ratio %.2f (bound %.1f)", off, on, ratio, tracingOverheadBound)
	if ratio > tracingOverheadBound {
		t.Fatalf("tracing overhead %.2f× exceeds the documented %.1f× bound (off %v, on %v)",
			ratio, tracingOverheadBound, off, on)
	}
}

// BenchmarkIngestTracing reports ingest throughput with the span layer on
// and off; `go test -bench IngestTracing -benchmem .` prints the MB/s
// pair behind the overhead guard.
func BenchmarkIngestTracing(b *testing.B) {
	data := randStream(4<<20, 99)
	for _, on := range []bool{true, false} {
		b.Run(fmt.Sprintf("tracing=%v", on), func(b *testing.B) {
			prev := telemetry.SetTracing(on)
			defer telemetry.SetTracing(prev)
			b.SetBytes(int64(len(data)))
			for i := 0; i < b.N; i++ {
				ingestOnce(b, data)
			}
		})
	}
}
