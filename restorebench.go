package repro

import (
	"context"
	"encoding/json"
	"io"
	"time"

	"repro/internal/workload"
)

// timedRestore runs one RestoreWith and measures its wall-clock duration
// alongside the (deterministic) simulated stats. The restore sweep routes
// every mode through the same Store entry point the parallel path uses, so
// the wall columns reflect the decode pool and shared cache as shipped.
func timedRestore(store *Store, b *Backup, opts RestoreOptions) (RestoreStats, time.Duration, error) {
	t0 := time.Now()
	st, err := store.RestoreWith(context.Background(), b, nil, opts)
	return st, time.Since(t0), err
}

// wallMBps converts restored bytes over a measured wall duration to MB/s.
func wallMBps(bytes int64, d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return float64(bytes) / d.Seconds() / 1e6
}

// RestorePoint is one generation of the restore sweep: the same recipe
// restored through each strategy so the per-generation degradation (and
// what each optimization buys back) is directly comparable.
type RestorePoint struct {
	Engine    string `json:"engine"`
	Gen       int    `json:"gen"` // 1-based generation number
	Label     string `json:"label"`
	Bytes     int64  `json:"bytes"`
	Fragments int    `json:"fragments"`

	// Legacy path: serial LRU container cache (restore.Run).
	LRUReads int64   `json:"lru_reads"`
	LRUMBps  float64 `json:"lru_MBps"`

	// OPT eviction alone: serial, uncoalesced Belady cache.
	OPTReads int64   `json:"opt_reads"`
	OPTMBps  float64 `json:"opt_MBps"`

	// Forward assembly area at the equivalent memory budget.
	FAAReads int64   `json:"faa_reads"`
	FAAMBps  float64 `json:"faa_MBps"`

	// Full pipeline: OPT + coalesced extents + parallel prefetch lanes.
	PipeReads     int64   `json:"pipe_reads"`   // container fetches
	PipeExtents   int64   `json:"pipe_extents"` // physical discontiguous reads after coalescing
	PipeCoalesced int64   `json:"pipe_coalesced"`
	PipeMBps      float64 `json:"pipe_MBps"`

	// Speedup is pipelined over legacy restore throughput.
	Speedup float64 `json:"speedup"`

	// Wall-clock throughput per mode (host-dependent; the simulated MBps
	// columns above are the deterministic paper metrics). The pipelined
	// column runs with the parallel decode pool on (DecodeWorkers auto).
	LRUWallMBps  float64 `json:"lru_wall_MBps"`
	OPTWallMBps  float64 `json:"opt_wall_MBps"`
	FAAWallMBps  float64 `json:"faa_wall_MBps"`
	PipeWallMBps float64 `json:"pipe_wall_MBps"`
	// WallSpeedup is pipelined over legacy wall-clock throughput.
	WallSpeedup float64 `json:"wall_speedup"`
}

// RestoreBench is the full restore sweep, serialized to BENCH_PR3.json.
type RestoreBench struct {
	Engine          string         `json:"engine"`
	Generations     int            `json:"generations"`
	CacheContainers int            `json:"cache_containers"`
	Workers         int            `json:"workers"`
	Points          []RestorePoint `json:"points"`

	// OPTNeverWorse reports Belady's guarantee held on every generation:
	// OPT container reads <= LRU container reads at equal capacity.
	OPTNeverWorse bool `json:"opt_never_worse"`
	// Final-generation headline numbers (the most fragmented recipe).
	FinalLRUReads int64   `json:"final_lru_reads"`
	FinalOPTReads int64   `json:"final_opt_reads"`
	FinalSpeedup  float64 `json:"final_speedup"`
}

// RunRestoreBench ingests Generations backups of the single-user workload
// into a fresh store of the given engine kind and restores every
// generation's recipe through four strategies: the legacy serial LRU cache,
// the serial OPT cache, the forward assembly area at the same memory
// budget, and the full pipeline (OPT + coalescing + workers prefetch
// lanes). cacheContainers <= 0 uses the restore default (8); workers <= 0
// uses 8.
func RunRestoreBench(cfg ExperimentConfig, kind EngineKind, cacheContainers, workers int) (*RestoreBench, error) {
	cfg = cfg.withDefaults()
	if cacheContainers <= 0 {
		cacheContainers = DefaultRestoreOptions().CacheContainers
	}
	if workers <= 0 {
		workers = 8
	}
	store, err := Open(Options{
		Engine:        kind,
		Alpha:         cfg.Alpha,
		ExpectedBytes: cfg.perGenBytes() * int64(cfg.Generations),
		Workers:       cfg.Workers,
	})
	if err != nil {
		return nil, err
	}
	sched, err := workload.NewSingle(cfg.workloadConfig())
	if err != nil {
		return nil, err
	}
	bench := &RestoreBench{
		Engine:          kind.String(),
		Generations:     cfg.Generations,
		CacheContainers: cacheContainers,
		Workers:         workers,
		OPTNeverWorse:   true,
	}
	// The FAA budget matches the container cache's data footprint
	// (capacity × 4 MiB default container data sections).
	areaBytes := int64(cacheContainers) << 22
	for g := 0; g < cfg.Generations; g++ {
		bk := sched.Next()
		b, err := store.Backup(context.Background(), bk.Label, bk.Stream)
		if err != nil {
			return nil, err
		}
		lru, lruWall, err := timedRestore(store, b, RestoreOptions{CacheContainers: cacheContainers, Policy: RestoreLRU, Workers: 1})
		if err != nil {
			return nil, err
		}
		opt, optWall, err := timedRestore(store, b, RestoreOptions{CacheContainers: cacheContainers, Policy: RestoreOPT, Workers: 1})
		if err != nil {
			return nil, err
		}
		t0 := time.Now()
		faa, err := store.RestoreFAA(context.Background(), b, nil, areaBytes, false)
		faaWall := time.Since(t0)
		if err != nil {
			return nil, err
		}
		pipe, pipeWall, err := timedRestore(store, b, RestoreOptions{CacheContainers: cacheContainers, Policy: RestoreOPT, Workers: workers, Coalesce: true})
		if err != nil {
			return nil, err
		}
		pt := RestorePoint{
			Engine:        kind.String(),
			Gen:           g + 1,
			Label:         b.Label,
			Bytes:         lru.Bytes,
			Fragments:     lru.Fragments,
			LRUReads:      lru.ContainerReads,
			LRUMBps:       lru.ThroughputMBps(),
			OPTReads:      opt.ContainerReads,
			OPTMBps:       opt.ThroughputMBps(),
			FAAReads:      faa.ContainerReads,
			FAAMBps:       faa.ThroughputMBps(),
			PipeReads:     pipe.ContainerReads,
			PipeExtents:   pipe.ExtentReads,
			PipeCoalesced: pipe.CoalescedContainers,
			PipeMBps:      pipe.ThroughputMBps(),
			LRUWallMBps:   wallMBps(lru.Bytes, lruWall),
			OPTWallMBps:   wallMBps(opt.Bytes, optWall),
			FAAWallMBps:   wallMBps(faa.Bytes, faaWall),
			PipeWallMBps:  wallMBps(pipe.Bytes, pipeWall),
		}
		if pt.LRUMBps > 0 {
			pt.Speedup = pt.PipeMBps / pt.LRUMBps
		}
		if pt.LRUWallMBps > 0 {
			pt.WallSpeedup = pt.PipeWallMBps / pt.LRUWallMBps
		}
		if pt.OPTReads > pt.LRUReads {
			bench.OPTNeverWorse = false
		}
		bench.Points = append(bench.Points, pt)
		if g == cfg.Generations-1 {
			bench.FinalLRUReads = pt.LRUReads
			bench.FinalOPTReads = pt.OPTReads
			bench.FinalSpeedup = pt.Speedup
		}
	}
	return bench, nil
}

// WriteRestoreBenchJSON serializes the benchmark result as indented JSON.
func WriteRestoreBenchJSON(w io.Writer, b *RestoreBench) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(b)
}
