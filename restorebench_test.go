package repro

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"
)

func TestRunRestoreBench(t *testing.T) {
	cfg := DefaultExperimentConfig()
	cfg.Generations = 6
	cfg.FilesPerUser = 12
	bench, err := RunRestoreBench(cfg, DDFSLike, 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(bench.Points) != cfg.Generations {
		t.Fatalf("got %d points, want %d", len(bench.Points), cfg.Generations)
	}
	if !bench.OPTNeverWorse {
		t.Fatal("Belady violated: OPT scheduled more container reads than LRU")
	}
	for i, p := range bench.Points {
		if p.Gen != i+1 || p.Bytes <= 0 {
			t.Fatalf("point %d malformed: %+v", i, p)
		}
		if p.OPTReads > p.LRUReads {
			t.Fatalf("gen %d: OPT %d reads > LRU %d", p.Gen, p.OPTReads, p.LRUReads)
		}
		if p.PipeReads != p.OPTReads {
			t.Fatalf("gen %d: coalescing/lanes changed the OPT fetch schedule: %d vs %d",
				p.Gen, p.PipeReads, p.OPTReads)
		}
		if p.PipeExtents > p.PipeReads {
			t.Fatalf("gen %d: more extents than container fetches: %+v", p.Gen, p)
		}
		if p.LRUMBps <= 0 || p.PipeMBps <= 0 {
			t.Fatalf("gen %d: missing throughput: %+v", p.Gen, p)
		}
	}
	// The acceptance bar of this PR: on the fragmented baseline the full
	// pipeline restores at >= 2x the legacy serial LRU path.
	if bench.FinalSpeedup < 2 {
		t.Fatalf("final-generation pipelined speedup %.2fx, want >= 2x", bench.FinalSpeedup)
	}

	var buf bytes.Buffer
	if err := WriteRestoreBenchJSON(&buf, bench); err != nil {
		t.Fatal(err)
	}
	var back RestoreBench
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back.FinalSpeedup != bench.FinalSpeedup || len(back.Points) != len(bench.Points) {
		t.Fatal("bench JSON does not round-trip")
	}
}

func TestRestoreWithOptionsRoundTrip(t *testing.T) {
	store, err := Open(Options{Engine: DDFSLike, StoreData: true, ExpectedBytes: 1 << 22})
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("restore-with options round trip "), 4096)
	b, err := store.Backup(context.Background(), "b1", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	for _, opts := range []RestoreOptions{
		{Policy: RestoreLRU, Workers: 1, Verify: true},
		{Policy: RestoreOPT, Workers: 1, Verify: true},
		{Policy: RestoreOPT, Workers: 4, Coalesce: true, Verify: true},
		{Policy: RestoreOPT, Workers: 4, Coalesce: true, ChunkCache: true, Verify: true},
	} {
		var out bytes.Buffer
		st, err := store.RestoreWith(context.Background(), b, &out, opts)
		if err != nil {
			t.Fatalf("opts %+v: %v", opts, err)
		}
		if !bytes.Equal(out.Bytes(), payload) {
			t.Fatalf("opts %+v: restored stream differs", opts)
		}
		if st.ExtentReads > st.ContainerReads {
			t.Fatalf("opts %+v: extents exceed container reads: %+v", opts, st)
		}
	}
}

func TestParseRestorePolicy(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want RestorePolicy
	}{{"lru", RestoreLRU}, {"opt", RestoreOPT}} {
		got, err := ParseRestorePolicy(tc.in)
		if err != nil || got != tc.want {
			t.Fatalf("ParseRestorePolicy(%q) = %v, %v", tc.in, got, err)
		}
		if got.String() != tc.in {
			t.Fatalf("String() = %q, want %q", got.String(), tc.in)
		}
	}
	if _, err := ParseRestorePolicy("belady"); err == nil {
		t.Fatal("unknown policy must error")
	}
}
