package repro

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"testing"

	"repro/internal/workload"
)

// restoreMode is one restore strategy under test, as a closure over the
// Store entry point it exercises.
type restoreMode struct {
	name string
	run  func(ctx context.Context, s *Store, b *Backup, w io.Writer) error
}

func allRestoreModes() []restoreMode {
	with := func(opts RestoreOptions) func(context.Context, *Store, *Backup, io.Writer) error {
		return func(ctx context.Context, s *Store, b *Backup, w io.Writer) error {
			opts.Verify = true
			_, err := s.RestoreWith(ctx, b, w, opts)
			return err
		}
	}
	return []restoreMode{
		{"lru", with(RestoreOptions{})},
		{"opt", with(RestoreOptions{Policy: RestoreOPT})},
		{"pipelined", with(RestoreOptions{Policy: RestoreOPT, Coalesce: true, Workers: 2})},
		{"chunkcache", with(RestoreOptions{ChunkCache: true})},
		{"faa", func(ctx context.Context, s *Store, b *Backup, w io.Writer) error {
			_, err := s.RestoreFAA(ctx, b, w, 8<<22, true)
			return err
		}},
	}
}

// TestBackupRestoreInvariant is the round-trip property over the whole
// matrix: for a seeded random workload, every engine × every physical
// backend must Backup and then restore bit-identical content under every
// restore strategy, and the store must pass fsck afterwards. This is the
// single invariant the per-feature round-trip checks used to assert
// piecemeal; new engines, backends, or restore modes belong in this table.
func TestBackupRestoreInvariant(t *testing.T) {
	engines := []EngineKind{DeFrag, DDFSLike, SiLoLike, SparseIndex, IDedup}
	backends := []BackendKind{SimBackend, FileBackend}
	const gens = 3

	for _, ek := range engines {
		for _, bk := range backends {
			t.Run(fmt.Sprintf("%s/%s", ek, bk), func(t *testing.T) {
				opts := Options{
					Engine:        ek,
					Alpha:         0.1,
					StoreData:     true,
					ExpectedBytes: 32 << 20,
					Backend:       bk,
				}
				if bk == FileBackend {
					opts.Dir = t.TempDir()
				}
				s, err := Open(opts)
				if err != nil {
					t.Fatal(err)
				}
				defer s.Close() //nolint:errcheck // test teardown

				// Seed varies per cell so no two cells share a workload.
				cfg := workload.DefaultConfig(int64(1 + int(ek)*10 + int(bk)))
				cfg.NumFiles = 6
				cfg.MeanFileSize = 96 << 10
				sched, err := workload.NewSingle(cfg)
				if err != nil {
					t.Fatal(err)
				}

				ctx := context.Background()
				var originals [][]byte
				var backups []*Backup
				for g := 0; g < gens; g++ {
					bkp := sched.Next()
					data, err := io.ReadAll(bkp.Stream)
					if err != nil {
						t.Fatal(err)
					}
					b, err := s.Backup(ctx, bkp.Label, bytes.NewReader(data))
					if err != nil {
						t.Fatalf("backup gen %d: %v", g, err)
					}
					originals = append(originals, data)
					backups = append(backups, b)
				}

				for g, b := range backups {
					for _, mode := range allRestoreModes() {
						var buf bytes.Buffer
						if err := mode.run(ctx, s, b, &buf); err != nil {
							t.Fatalf("restore gen %d mode %s: %v", g, mode.name, err)
						}
						if !bytes.Equal(buf.Bytes(), originals[g]) {
							t.Fatalf("restore gen %d mode %s: %d bytes differ from %d original",
								g, mode.name, buf.Len(), len(originals[g]))
						}
					}
				}

				rep, err := s.Check(ctx, true)
				if err != nil {
					t.Fatal(err)
				}
				if !rep.OK() {
					t.Fatalf("fsck after round trip: %v", rep.Problems)
				}
			})
		}
	}
}

// TestScenarioRoundtripInvariant extends the round-trip property across the
// scenario axis: every workload family (backup, primary, workspace) × every
// engine × every physical backend must ingest seeded streams and restore
// them bit-identically under every restore strategy, with fsck clean at the
// end. Primary and workspace streams have very different duplicate geometry
// from the backup generations the engines were tuned on, so this is the
// cheapest way to catch an engine that silently assumes generational shape.
func TestScenarioRoundtripInvariant(t *testing.T) {
	engines := []EngineKind{DeFrag, DDFSLike, SiLoLike, SparseIndex, IDedup}
	backends := []BackendKind{SimBackend, FileBackend}
	const streams = 4

	for _, sc := range workload.AllScenarios() {
		for _, ek := range engines {
			for _, bk := range backends {
				t.Run(fmt.Sprintf("%s/%s/%s", sc, ek, bk), func(t *testing.T) {
					opts := Options{
						Engine:        ek,
						Alpha:         0.1,
						StoreData:     true,
						ExpectedBytes: 32 << 20,
						Backend:       bk,
					}
					if bk == FileBackend {
						opts.Dir = t.TempDir()
					}
					if ek == DeFrag && sc == workload.ScenarioPrimary {
						// The primary scenario is the filter's target
						// workload; run it enabled with a probation short
						// enough to reach a verdict at test scale.
						opts.Filter = FilterOptions{Enabled: true, Probation: 32}
					}
					s, err := Open(opts)
					if err != nil {
						t.Fatal(err)
					}
					defer s.Close() //nolint:errcheck // test teardown

					sched, err := workload.NewScenario(sc, workload.ScenarioParams{
						Seed:           int64(1 + int(sc)*100 + int(ek)*10 + int(bk)),
						Users:          2,
						BytesPerStream: 256 << 10,
					})
					if err != nil {
						t.Fatal(err)
					}

					ctx := context.Background()
					var originals [][]byte
					var backups []*Backup
					for i := 0; i < streams; i++ {
						bkp := sched.Next()
						data, err := io.ReadAll(bkp.Stream)
						if err != nil {
							t.Fatal(err)
						}
						b, err := s.Backup(ctx, bkp.Label, bytes.NewReader(data))
						if err != nil {
							t.Fatalf("backup %s: %v", bkp.Label, err)
						}
						originals = append(originals, data)
						backups = append(backups, b)
					}

					for i, b := range backups {
						for _, mode := range allRestoreModes() {
							var buf bytes.Buffer
							if err := mode.run(ctx, s, b, &buf); err != nil {
								t.Fatalf("restore stream %d mode %s: %v", i, mode.name, err)
							}
							if !bytes.Equal(buf.Bytes(), originals[i]) {
								t.Fatalf("restore stream %d mode %s: %d bytes differ from %d original",
									i, mode.name, buf.Len(), len(originals[i]))
							}
						}
					}

					rep, err := s.Check(ctx, true)
					if err != nil {
						t.Fatal(err)
					}
					if !rep.OK() {
						t.Fatalf("fsck after %s round trip: %v", sc, rep.Problems)
					}
				})
			}
		}
	}
}

// TestScenarioIngestStreamConcurrent ingests each scenario's streams through
// the network entry point with one concurrent IngestStream per tenant —
// the shape a multi-tenant dedupd sees — and requires bit-identical
// restores plus clean fsck.
func TestScenarioIngestStreamConcurrent(t *testing.T) {
	for _, sc := range workload.AllScenarios() {
		t.Run(sc.String(), func(t *testing.T) {
			s, err := Open(Options{Engine: DeFrag, Alpha: 0.1, StoreData: true, ExpectedBytes: 32 << 20})
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close() //nolint:errcheck // test teardown

			const tenants = 3
			const rounds = 2
			ctx := context.Background()
			type named struct {
				label string
				data  []byte
			}
			perTenant := make([][]named, tenants)
			for tn := 0; tn < tenants; tn++ {
				// One independent schedule per tenant: cross-tenant dedup
				// comes from the store, not from sharing a generator.
				sched, err := workload.NewScenario(sc, workload.ScenarioParams{
					Seed:           int64(40 + tn),
					Users:          1,
					BytesPerStream: 192 << 10,
				})
				if err != nil {
					t.Fatal(err)
				}
				for r := 0; r < rounds; r++ {
					bkp := sched.Next()
					data, err := io.ReadAll(bkp.Stream)
					if err != nil {
						t.Fatal(err)
					}
					perTenant[tn] = append(perTenant[tn], named{
						label: fmt.Sprintf("t%d/%s", tn, bkp.Label),
						data:  data,
					})
				}
			}

			errs := make(chan error, tenants)
			for tn := 0; tn < tenants; tn++ {
				go func(tn int) {
					for _, st := range perTenant[tn] {
						if _, err := s.IngestStream(ctx, st.label, bytes.NewReader(st.data)); err != nil {
							errs <- fmt.Errorf("%s: %w", st.label, err)
							return
						}
					}
					errs <- nil
				}(tn)
			}
			for tn := 0; tn < tenants; tn++ {
				if err := <-errs; err != nil {
					t.Fatal(err)
				}
			}

			for tn := 0; tn < tenants; tn++ {
				for _, st := range perTenant[tn] {
					b := s.FindBackup(st.label)
					if b == nil {
						t.Fatalf("stream %s not retained", st.label)
					}
					var buf bytes.Buffer
					if _, err := s.Restore(ctx, b, &buf, true); err != nil {
						t.Fatal(err)
					}
					if !bytes.Equal(buf.Bytes(), st.data) {
						t.Fatalf("stream %s: restored content diverged", st.label)
					}
				}
			}
			rep, err := s.Check(ctx, true)
			if err != nil {
				t.Fatal(err)
			}
			if !rep.OK() {
				t.Fatalf("fsck after concurrent %s ingest: %v", sc, rep.Problems)
			}
		})
	}
}

// TestIngestStreamConcurrentInvariant is the same bit-identical property
// through the network service's Store entry point: many concurrent
// IngestStream calls (the serve path) over one store, then every stream
// restores bit-identically and fsck passes.
func TestIngestStreamConcurrentInvariant(t *testing.T) {
	for _, ek := range []EngineKind{DeFrag, DDFSLike, IDedup} { // with and without concurrent-stream support
		t.Run(ek.String(), func(t *testing.T) {
			s, err := Open(Options{Engine: ek, Alpha: 0.1, StoreData: true, ExpectedBytes: 32 << 20})
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close() //nolint:errcheck // test teardown

			const streams = 6
			ctx := context.Background()
			contents := make([][]byte, streams)
			errs := make(chan error, streams)
			for i := 0; i < streams; i++ {
				cfg := workload.DefaultConfig(int64(500 + i))
				cfg.NumFiles = 4
				cfg.MeanFileSize = 64 << 10
				sched, err := workload.NewSingle(cfg)
				if err != nil {
					t.Fatal(err)
				}
				data, err := io.ReadAll(sched.Next().Stream)
				if err != nil {
					t.Fatal(err)
				}
				contents[i] = data
				go func(i int) {
					_, err := s.IngestStream(ctx, fmt.Sprintf("s%d", i), bytes.NewReader(contents[i]))
					errs <- err
				}(i)
			}
			for i := 0; i < streams; i++ {
				if err := <-errs; err != nil {
					t.Fatal(err)
				}
			}
			for i := 0; i < streams; i++ {
				b := s.FindBackup(fmt.Sprintf("s%d", i))
				if b == nil {
					t.Fatalf("stream s%d not retained", i)
				}
				var buf bytes.Buffer
				if _, err := s.Restore(ctx, b, &buf, true); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(buf.Bytes(), contents[i]) {
					t.Fatalf("stream s%d: restored content diverged", i)
				}
			}
			rep, err := s.Check(ctx, true)
			if err != nil {
				t.Fatal(err)
			}
			if !rep.OK() {
				t.Fatalf("fsck after concurrent ingest: %v", rep.Problems)
			}
		})
	}
}
