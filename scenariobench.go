package repro

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"io"
	"time"

	"repro/internal/workload"
)

// ScenarioBenchConfig sizes the cross-scenario benchmark: every scenario
// (backup, primary, workspace) replays the same seeded shape — Users streams
// by Rounds windows of roughly BytesPerStream each — into a fresh DeFrag
// store, so the per-scenario rows of BENCH_PR10.json are directly
// comparable.
type ScenarioBenchConfig struct {
	Seed           int64
	Users          int   // streams / volumes / tenants per scenario (default 4)
	Rounds         int   // backups per stream (default 4)
	BytesPerStream int64 // approximate bytes per backup (default 4 MiB)
	// FilterEpochs bounds the maintenance epochs run after the primary
	// filter-vs-baseline pair before measuring the recovered dedup ratio
	// (default 8).
	FilterEpochs int
}

func (c ScenarioBenchConfig) withDefaults() ScenarioBenchConfig {
	if c.Seed == 0 {
		c.Seed = 42
	}
	if c.Users <= 0 {
		c.Users = 4
	}
	if c.Rounds <= 0 {
		c.Rounds = 4
	}
	if c.BytesPerStream <= 0 {
		c.BytesPerStream = 4 << 20
	}
	if c.FilterEpochs <= 0 {
		c.FilterEpochs = 8
	}
	return c
}

// ScenarioPoint is one scenario's row of the comparable table.
type ScenarioPoint struct {
	Scenario       string  `json:"scenario"`
	Backups        int     `json:"backups"`
	LogicalBytes   int64   `json:"logical_bytes"`
	StoredBytes    int64   `json:"stored_bytes"`
	DedupRatio     float64 `json:"dedup_ratio"`
	IngestSimMBps  float64 `json:"ingest_sim_mbps"`
	IngestWallMBps float64 `json:"ingest_wall_mbps"`
	RestoreSimMBps float64 `json:"restore_sim_mbps"`
	// Verified is true only if every restored stream hashed identical to
	// its ingested bytes and the final fsck found nothing.
	Verified bool `json:"verified"`
}

// PrimaryFilterPoint is the filter-vs-dedup-everything comparison on the
// primary scenario: same seeded streams, one store with the prioritized
// inline filter, one without, both followed by maintenance epochs. The
// filter earns its keep iff ingest gets faster while the post-maintenance
// dedup ratio holds. Both ratios are logical over live stored bytes (see
// liveDedupRatio).
type PrimaryFilterPoint struct {
	BaselineIngestSimMBps float64 `json:"baseline_ingest_sim_mbps"`
	FilterIngestSimMBps   float64 `json:"filter_ingest_sim_mbps"`
	IngestSpeedup         float64 `json:"ingest_speedup"`
	BaselineDedupRatio    float64 `json:"baseline_dedup_ratio"`
	FilterDedupRatio      float64 `json:"filter_dedup_ratio"`
	SpilledStreams        int     `json:"spilled_streams"`
	SpilledBytes          int64   `json:"spilled_bytes"`
	RefsRededuped         int64   `json:"refs_rededuped"`
	Epochs                int     `json:"epochs"`
	Verified              bool    `json:"verified"`
}

// ScenarioBench is the full result, serialized to BENCH_PR10.json.
type ScenarioBench struct {
	Seed          int64              `json:"seed"`
	Users         int                `json:"users"`
	Rounds        int                `json:"rounds"`
	Scenarios     []ScenarioPoint    `json:"scenarios"`
	PrimaryFilter PrimaryFilterPoint `json:"primary_filter"`
}

// scenarioRun holds one store's measured ingest plus the pinned digests.
type scenarioRun struct {
	store     *Store
	digests   map[string][32]byte
	logical   int64
	simIngest time.Duration
	wall      time.Duration
	backups   int
}

// ingestScenario replays the seeded schedule into a fresh store, pinning
// every stream's SHA-256 at ingest time.
func ingestScenario(ctx context.Context, sc workload.Scenario, cfg ScenarioBenchConfig, opts Options) (*scenarioRun, error) {
	total := int64(cfg.Users*cfg.Rounds) * cfg.BytesPerStream * 2
	opts.Engine = DeFrag
	opts.StoreData = true
	if opts.ExpectedBytes == 0 {
		opts.ExpectedBytes = total
	}
	st, err := Open(opts)
	if err != nil {
		return nil, err
	}
	sched, err := workload.NewScenario(sc, workload.ScenarioParams{
		Seed: cfg.Seed, Users: cfg.Users, BytesPerStream: cfg.BytesPerStream,
	})
	if err != nil {
		return nil, err
	}
	run := &scenarioRun{store: st, digests: make(map[string][32]byte)}
	wallStart := time.Now()
	for i := 0; i < cfg.Users*cfg.Rounds; i++ {
		bk := sched.Next()
		h := sha256.New()
		b, err := st.Backup(ctx, bk.Label, io.TeeReader(bk.Stream, h))
		if err != nil {
			return nil, fmt.Errorf("%s %s: %w", sc, bk.Label, err)
		}
		run.digests[bk.Label] = [32]byte(h.Sum(nil))
		run.logical += b.Stats.LogicalBytes
		run.simIngest += b.Stats.Duration
		run.backups++
	}
	run.wall = time.Since(wallStart)
	return run, nil
}

// verifyRestores restores every retained backup (serial LRU, the comparable
// default) and checks it byte-identical to the ingested stream. It returns
// the restore throughput and whether everything verified, including a final
// data-verifying fsck.
func verifyRestores(ctx context.Context, run *scenarioRun) (simMBps float64, verified bool, err error) {
	var bytesTotal int64
	var simTotal time.Duration
	verified = true
	for _, b := range run.store.Backups() {
		h := sha256.New()
		rs, rerr := run.store.RestoreWith(ctx, b, h, RestoreOptions{Policy: RestoreLRU, Workers: 1})
		if rerr != nil {
			return 0, false, fmt.Errorf("restore %s: %w", b.Label, rerr)
		}
		want := run.digests[b.Label]
		if !bytes.Equal(h.Sum(nil), want[:]) {
			verified = false
		}
		bytesTotal += rs.Bytes
		simTotal += rs.Duration
	}
	rep, cerr := run.store.Check(ctx, true)
	if cerr != nil || !rep.OK() {
		verified = false
	}
	if sec := simTotal.Seconds(); sec > 0 {
		simMBps = float64(bytesTotal) / sec / 1e6
	}
	return simMBps, verified, nil
}

// liveDedupRatio is logical bytes over live stored bytes: stored minus the
// garbage a compaction pass could reclaim at any time (abandoned spill
// copies after re-dedup, superseded rewrite copies). Both ablation stores
// are measured identically, so neither side gets credit for garbage.
func liveDedupRatio(s *Store) float64 {
	ss := s.Stats()
	rep := s.MaintenanceReport()
	live := rep.StoredBytes - rep.DeadBytes
	if live <= 0 {
		return ss.CompressionRatio
	}
	return float64(ss.LogicalBytes) / float64(live)
}

func mbps(n int64, d time.Duration) float64 {
	if sec := d.Seconds(); sec > 0 {
		return float64(n) / sec / 1e6
	}
	return 0
}

// RunScenarioBench ingests the three scenarios from one seeded run and emits
// the comparable table, plus the primary-storage filter ablation.
func RunScenarioBench(cfg ScenarioBenchConfig) (*ScenarioBench, error) {
	cfg = cfg.withDefaults()
	ctx := context.Background()
	bench := &ScenarioBench{Seed: cfg.Seed, Users: cfg.Users, Rounds: cfg.Rounds}

	for _, sc := range workload.AllScenarios() {
		run, err := ingestScenario(ctx, sc, cfg, Options{})
		if err != nil {
			return nil, err
		}
		restMBps, verified, err := verifyRestores(ctx, run)
		if err != nil {
			return nil, err
		}
		ss := run.store.Stats()
		bench.Scenarios = append(bench.Scenarios, ScenarioPoint{
			Scenario:       sc.String(),
			Backups:        run.backups,
			LogicalBytes:   run.logical,
			StoredBytes:    ss.StoredBytes,
			DedupRatio:     ss.CompressionRatio,
			IngestSimMBps:  mbps(run.logical, run.simIngest),
			IngestWallMBps: mbps(run.logical, run.wall),
			RestoreSimMBps: restMBps,
			Verified:       verified,
		})
	}

	// The ablation: identical primary streams, filter on vs. off, then
	// maintenance re-dedups the spill before the ratio comparison. Both
	// stores get the same aggressive merge threshold so each side's dead
	// bytes (spill copies here, superseded rewrites there) are reclaimed
	// before the ratios are compared.
	maint := MaintenanceOptions{UtilThreshold: 0.85}
	baseline, err := ingestScenario(ctx, workload.ScenarioPrimary, cfg, Options{Maintenance: maint})
	if err != nil {
		return nil, err
	}
	filtered, err := ingestScenario(ctx, workload.ScenarioPrimary, cfg, Options{
		Filter:      FilterOptions{Enabled: true},
		Maintenance: maint,
	})
	if err != nil {
		return nil, err
	}
	pf := PrimaryFilterPoint{
		BaselineIngestSimMBps: mbps(baseline.logical, baseline.simIngest),
		FilterIngestSimMBps:   mbps(filtered.logical, filtered.simIngest),
	}
	if pf.BaselineIngestSimMBps > 0 {
		pf.IngestSpeedup = pf.FilterIngestSimMBps / pf.BaselineIngestSimMBps
	}
	fs := filtered.store.Stats()
	pf.SpilledStreams = fs.SpilledStreams
	pf.SpilledBytes = fs.SpilledBytes
	for _, run := range []*scenarioRun{baseline, filtered} {
		for i := 0; i < cfg.FilterEpochs; i++ {
			ms, merr := run.store.MaintenanceEpoch(ctx)
			if merr != nil {
				return nil, merr
			}
			if run == filtered {
				pf.RefsRededuped += ms.RefsRededuped
				pf.Epochs++
			}
			if ms.RefsRededuped == 0 && ms.RefsRemapped == 0 && ms.ContainersMerged == 0 {
				break
			}
		}
	}
	pf.BaselineDedupRatio = liveDedupRatio(baseline.store)
	pf.FilterDedupRatio = liveDedupRatio(filtered.store)
	// Restores after maintenance prove the remapped recipes still
	// reconstruct the spilled streams bit-identically.
	_, bVerified, err := verifyRestores(ctx, baseline)
	if err != nil {
		return nil, err
	}
	_, fVerified, err := verifyRestores(ctx, filtered)
	if err != nil {
		return nil, err
	}
	pf.Verified = bVerified && fVerified
	bench.PrimaryFilter = pf
	return bench, nil
}

// WriteScenarioBenchJSON serializes the benchmark as indented JSON.
func WriteScenarioBenchJSON(w io.Writer, b *ScenarioBench) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(b)
}
