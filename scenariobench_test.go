package repro

import (
	"bytes"
	"encoding/json"
	"testing"
)

// TestScenarioBenchAcceptance runs the cross-scenario harness at its default
// (CI) configuration and asserts the PR's acceptance bar end to end: every
// scenario row reports a sane dedup ratio with all restores hash-verified,
// and the prioritized inline filter beats dedup-everything on primary
// ingest throughput at an equal-or-better live dedup ratio.
func TestScenarioBenchAcceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-scenario bench takes seconds")
	}
	b, err := RunScenarioBench(ScenarioBenchConfig{})
	if err != nil {
		t.Fatal(err)
	}

	if len(b.Scenarios) != 3 {
		t.Fatalf("expected 3 scenario rows, got %d", len(b.Scenarios))
	}
	seen := map[string]bool{}
	for _, p := range b.Scenarios {
		seen[p.Scenario] = true
		if !p.Verified {
			t.Errorf("%s: restores not verified", p.Scenario)
		}
		if p.DedupRatio < 1.0 {
			t.Errorf("%s: dedup ratio %.3f < 1", p.Scenario, p.DedupRatio)
		}
		if p.IngestSimMBps <= 0 || p.RestoreSimMBps <= 0 {
			t.Errorf("%s: non-positive throughput %+v", p.Scenario, p)
		}
		if p.LogicalBytes <= 0 || p.StoredBytes <= 0 || p.Backups <= 0 {
			t.Errorf("%s: degenerate sizes %+v", p.Scenario, p)
		}
	}
	for _, name := range []string{"backup", "primary", "workspace"} {
		if !seen[name] {
			t.Errorf("scenario %s missing from table", name)
		}
	}

	pf := b.PrimaryFilter
	if pf.BaselineIngestSimMBps == 0 || pf.FilterIngestSimMBps == 0 {
		t.Fatalf("primary_filter ablation missing or degenerate: %+v", pf)
	}
	if !pf.Verified {
		t.Error("filter ablation restores not verified")
	}
	if pf.SpilledStreams == 0 || pf.SpilledBytes == 0 {
		t.Errorf("filter never spilled on the primary workload: %+v", pf)
	}
	if pf.RefsRededuped == 0 {
		t.Errorf("out-of-line re-dedup reclaimed nothing: %+v", pf)
	}
	// The acceptance criterion proper: faster ingest at equal-or-better
	// dedup. A hair of float slack on the ratio; none on throughput.
	if pf.FilterIngestSimMBps < pf.BaselineIngestSimMBps {
		t.Errorf("filter ingest %.2f MB/s slower than baseline %.2f MB/s",
			pf.FilterIngestSimMBps, pf.BaselineIngestSimMBps)
	}
	if pf.FilterDedupRatio < pf.BaselineDedupRatio*0.999 {
		t.Errorf("filter dedup ratio %.4f below baseline %.4f",
			pf.FilterDedupRatio, pf.BaselineDedupRatio)
	}

	// The JSON artifact CI uploads must round-trip.
	var buf bytes.Buffer
	if err := WriteScenarioBenchJSON(&buf, b); err != nil {
		t.Fatal(err)
	}
	var back ScenarioBench
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("BENCH_PR10.json does not round-trip: %v", err)
	}
	if len(back.Scenarios) != len(b.Scenarios) ||
		back.PrimaryFilter.FilterIngestSimMBps != pf.FilterIngestSimMBps {
		t.Fatal("JSON round-trip dropped fields")
	}
}
