#!/usr/bin/env bash
# check_coverage.sh — run the test suite with coverage and enforce a
# per-package floor. Floors are set ~5-8 points below the coverage each
# package had when its floor was introduced, so they trip on real
# regressions (a big untested feature landing) rather than on noise.
#
# Adding a package: land its tests, run `go test -cover ./...`, and add a
# floor a handful of points below what you measured.
set -euo pipefail
cd "$(dirname "$0")/.."

declare -A floors=(
  [repro]=75
  [repro/cmd/dedupd]=15
  [repro/internal/analysis]=90
  [repro/internal/archive]=70
  [repro/internal/blockstore]=60
  [repro/internal/bloom]=90
  [repro/internal/chunk]=95
  [repro/internal/chunker]=85
  [repro/internal/cindex]=75
  [repro/internal/container]=60
  [repro/internal/core]=72
  [repro/internal/disk]=50
  [repro/internal/engine]=78
  [repro/internal/engine/ddfs]=72
  [repro/internal/engine/idedup]=80
  [repro/internal/engine/silo]=85
  [repro/internal/engine/sparse]=88
  [repro/internal/fsck]=40
  [repro/internal/gc]=85
  [repro/internal/lru]=85
  [repro/internal/maintenance]=75
  [repro/internal/metrics]=88
  [repro/internal/minhash]=90
  [repro/internal/restore]=85
  [repro/internal/segment]=90
  [repro/internal/serve]=70
  [repro/internal/telemetry]=75
  [repro/internal/trace]=70
  [repro/internal/workload]=85
)

out=$(go test -count=1 -cover ./...)
printf '%s\n' "$out"
echo
echo "--- coverage floors ---"

fail=0
seen=""
while IFS= read -r line; do
  [[ $line == ok* ]] || continue
  pkg=$(awk '{print $2}' <<<"$line")
  pct=$(grep -o 'coverage: [0-9.]*%' <<<"$line" | grep -o '[0-9.]*' || true)
  [[ -n $pct ]] || continue
  floor=${floors[$pkg]:-}
  if [[ -z $floor ]]; then
    continue
  fi
  seen="$seen $pkg"
  if awk -v p="$pct" -v f="$floor" 'BEGIN{exit !(p < f)}'; then
    echo "FAIL  $pkg: ${pct}% < floor ${floor}%"
    fail=1
  else
    echo "ok    $pkg: ${pct}% >= ${floor}%"
  fi
done <<<"$out"

# A floored package that produced no coverage line (deleted, renamed, or
# its tests vanished) is also a regression.
for pkg in "${!floors[@]}"; do
  if [[ " $seen " != *" $pkg "* ]]; then
    echo "FAIL  $pkg: has a coverage floor but reported no coverage"
    fail=1
  fi
done

exit $fail
