package repro

import (
	"context"
	"fmt"
	"io"

	"repro/internal/disk"
	"repro/internal/engine"
	"repro/internal/telemetry"
)

// IngestStream ingests one labeled backup stream and is safe for concurrent
// use — it is the Store entry point for the network service (internal/serve),
// where many client uploads are in flight at once.
//
// Engines with a concurrent ingest path (DeFrag, DDFS-Like; see
// engine.StreamBackupper) run each call as one lane of the PR-2 multi-stream
// timing model: the lane's simulated clock starts at the master clock's
// current reading, the stream pays its costs on that lane while sharing the
// index shards, Bloom filter and container store, and on commit the master
// clock advances to the lane's finish time if it is ahead — K concurrent
// uploads cost the slowest lane, not the sum, exactly as BackupStreams
// charges a round. Engines without concurrent ingest are serialized on an
// internal mutex, so correctness never depends on the engine kind.
//
// Cancelling ctx aborts the backup between segments; the store stays
// consistent and the aborted backup is simply absent (the cancelled-ingest
// contract of Store.Backup).
func (s *Store) IngestStream(ctx context.Context, label string, r io.Reader) (*Backup, error) {
	ctx, span := telemetry.StartSpan(ctx, "store.ingest_stream")
	defer span.End()
	telBackups.Inc()
	s.maintMu.RLock()
	defer s.maintMu.RUnlock()

	sb, ok := s.eng.(engine.StreamBackupper)
	if !ok {
		return s.ingestSerial(ctx, label, r)
	}

	master := s.eng.Clock()
	var lane disk.Clock
	lane.Advance(master.Now())
	rec, st, err := sb.BackupStream(ctx, label, r, &lane)
	if err != nil {
		return nil, err
	}
	span.SetSim(st.Duration)
	b := newBackup(label, fromEngineStats(st), rec)

	// Commit under the store lock: retained-set bookkeeping, durable
	// persistence, and the master-clock advance are one atomic step, so
	// concurrent lanes cannot interleave half-committed state.
	s.mu.Lock()
	if d := lane.Now() - master.Now(); d > 0 {
		master.Advance(d)
	}
	s.backups = append(s.backups, b)
	s.logical += st.LogicalBytes
	var perr error
	if s.durable() {
		perr = s.persistBackup(b)
	}
	s.mu.Unlock()
	if perr != nil {
		return b, fmt.Errorf("repro: persisting backup %q: %w", label, perr)
	}
	return b, nil
}

// ingestSerial is the IngestStream fallback for engines whose ingest path
// is single-threaded: whole backups run back-to-back under ingestMu.
func (s *Store) ingestSerial(ctx context.Context, label string, r io.Reader) (*Backup, error) {
	s.ingestMu.Lock()
	defer s.ingestMu.Unlock()
	rec, st, err := s.eng.Backup(ctx, label, r)
	if err != nil {
		return nil, err
	}
	b := newBackup(label, fromEngineStats(st), rec)
	if err := s.commitBackup(b); err != nil {
		return b, fmt.Errorf("repro: persisting backup %q: %w", label, err)
	}
	return b, nil
}
