package repro

import (
	"time"

	"repro/internal/engine"
	"repro/internal/restore"
)

// BackupStats are the measurements of one backup through the store. All
// byte counts are logical-stream bytes; all times are simulated-disk time.
type BackupStats struct {
	Label        string
	LogicalBytes int64
	Chunks       int64
	Segments     int64

	UniqueBytes     int64 // new unique chunk bytes written
	DedupedBytes    int64 // redundant bytes removed by reference
	RewrittenBytes  int64 // redundant bytes deliberately written (DeFrag)
	RewrittenChunks int64
	MissedDupBytes  int64 // redundancy the engine failed to detect (SiLo)
	SpilledBytes    int64 // probable duplicates written through by the inline filter
	SpilledChunks   int64
	FilterSpilled   bool // the inline filter demoted this stream to write-through

	Duration time.Duration

	// Mechanism counters.
	IndexLookups   int64 // on-disk full-index lookups (DDFS/DeFrag)
	MetaPrefetches int64 // container-metadata prefetches (DDFS/DeFrag)
	CacheHits      int64 // duplicates resolved from RAM caches
	BlockReads     int64 // block-metadata reads (SiLo)

	// Ground truth (only when Options.TrackEfficiency).
	OracleRedundantBytes  int64
	PartialRedundantBytes int64
	RemovedInPartialBytes int64
}

// ThroughputMBps returns the backup's deduplication throughput in MB/s —
// the paper's Fig. 2/Fig. 4 metric.
func (s BackupStats) ThroughputMBps() float64 {
	sec := s.Duration.Seconds()
	if sec == 0 {
		return 0
	}
	return float64(s.LogicalBytes) / sec / 1e6
}

// Efficiency returns the paper's Fig. 3/Fig. 5 deduplication-efficiency
// metric: redundant bytes removed over redundant bytes present, restricted
// to partially-redundant segments. Requires Options.TrackEfficiency; 0
// otherwise.
func (s BackupStats) Efficiency() float64 {
	es := engine.BackupStats{
		OracleRedundantBytes:  s.OracleRedundantBytes,
		PartialRedundantBytes: s.PartialRedundantBytes,
		RemovedInPartialBytes: s.RemovedInPartialBytes,
	}
	return es.Efficiency()
}

// WrittenBytes returns the physical bytes this backup added.
func (s BackupStats) WrittenBytes() int64 {
	return s.UniqueBytes + s.RewrittenBytes + s.SpilledBytes
}

func fromEngineStats(st engine.BackupStats) BackupStats {
	return BackupStats{
		Label:        st.Label,
		LogicalBytes: st.LogicalBytes,
		Chunks:       st.Chunks,
		Segments:     st.Segments,

		UniqueBytes:     st.UniqueBytes,
		DedupedBytes:    st.DedupedBytes,
		RewrittenBytes:  st.RewrittenBytes,
		RewrittenChunks: st.RewrittenChunks,
		MissedDupBytes:  st.MissedDupBytes,
		SpilledBytes:    st.SpilledBytes,
		SpilledChunks:   st.SpilledChunks,
		FilterSpilled:   st.FilterSpilled,

		Duration: st.Duration,

		IndexLookups:   st.IndexLookups,
		MetaPrefetches: st.MetaPrefetches,
		CacheHits:      st.CacheHits,
		BlockReads:     st.BlockReads,

		OracleRedundantBytes:  st.OracleRedundantBytes,
		PartialRedundantBytes: st.PartialRedundantBytes,
		RemovedInPartialBytes: st.RemovedInPartialBytes,
	}
}

// RestoreStats are the measurements of one restore — the paper's Fig. 6
// metric plus the fragmentation evidence behind Eq. 1.
type RestoreStats struct {
	Label          string
	Bytes          int64
	Chunks         int64
	ContainerReads int64 // restore-cache misses: full container reads
	CacheHits      int64
	// ExtentReads is the count of physical discontiguous reads (Eq. 1's N
	// after coalescing); equals ContainerReads on uncoalesced paths.
	ExtentReads int64
	// CoalescedContainers is the number of container fetches folded into a
	// preceding sequential extent read — the seeks saved by coalescing.
	CoalescedContainers int64
	// PeakCacheBytes is the chunk-level cache's memory high-water mark
	// (0 unless RestoreOptions.ChunkCache).
	PeakCacheBytes int64
	Fragments      int // placement fragments (Eq. 1's N)
	Duration       time.Duration
}

// ThroughputMBps returns the restore bandwidth in MB/s.
func (s RestoreStats) ThroughputMBps() float64 {
	sec := s.Duration.Seconds()
	if sec == 0 {
		return 0
	}
	return float64(s.Bytes) / sec / 1e6
}

func fromRestoreStats(st restore.Stats) RestoreStats {
	return RestoreStats{
		Label:               st.Label,
		Bytes:               st.Bytes,
		Chunks:              st.Chunks,
		ContainerReads:      st.ContainerReads,
		CacheHits:           st.CacheHits,
		ExtentReads:         st.ExtentReads,
		CoalescedContainers: st.CoalescedContainers,
		PeakCacheBytes:      st.PeakCacheBytes,
		Fragments:           st.Fragments,
		Duration:            st.Duration,
	}
}
