package repro

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"testing"

	"repro/internal/telemetry"
)

// syncBuffer lets the telemetry sink be read back safely after concurrent
// span ends.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) bytes() []byte {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]byte(nil), b.buf.Bytes()...)
}

// TestIngestStreamTracePropagation runs concurrent IngestStreams, each under
// its own (remote-parented) trace, and asserts from the span sink that every
// span emitted for a request carries that request's trace ID and a parent
// that is either the remote root or another span of the same trace. Run
// under -race this is the concurrency gate for context-threaded tracing.
func TestIngestStreamTracePropagation(t *testing.T) {
	var sink syncBuffer
	telemetry.SetSink(&sink)
	defer telemetry.SetSink(nil)

	store, err := Open(Options{Engine: DeFrag, Alpha: 0.1, ExpectedBytes: 64 << 20, StoreData: true, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close() //nolint:errcheck // test teardown

	const streams = 4
	type req struct {
		trace  telemetry.TraceID
		remote telemetry.SpanID
	}
	reqs := make([]req, streams)
	var wg sync.WaitGroup
	errs := make([]error, streams)
	for i := 0; i < streams; i++ {
		reqs[i] = req{trace: telemetry.NewTraceID(), remote: telemetry.NewSpanID()}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx := telemetry.ContextWithRemoteParent(context.Background(), reqs[i].trace, reqs[i].remote)
			data := randStream(256<<10, int64(1000+i))
			_, errs[i] = store.IngestStream(ctx, fmt.Sprintf("t%d/gen0", i), bytes.NewReader(data))
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("ingest %d: %v", i, err)
		}
	}

	// Decode every span event and index them per trace.
	dec := json.NewDecoder(bytes.NewReader(sink.bytes()))
	perTrace := make(map[string][]telemetry.SpanRecord)
	for {
		var rec telemetry.SpanRecord
		if err := dec.Decode(&rec); err == io.EOF {
			break
		} else if err != nil {
			t.Fatal(err)
		}
		perTrace[rec.Trace] = append(perTrace[rec.Trace], rec)
	}

	for i, rq := range reqs {
		spans := perTrace[rq.trace.String()]
		if len(spans) == 0 {
			t.Fatalf("request %d: no spans carry trace %s", i, rq.trace)
		}
		ids := make(map[string]bool, len(spans))
		for _, sp := range spans {
			if sp.ID == "" {
				t.Fatalf("request %d: span %q has no ID", i, sp.Name)
			}
			if ids[sp.ID] {
				t.Fatalf("request %d: duplicate span ID %s", i, sp.ID)
			}
			ids[sp.ID] = true
		}
		roots := 0
		for _, sp := range spans {
			switch {
			case sp.Parent == rq.remote.String():
				roots++ // local root, parented to the client's remote span
			case ids[sp.Parent]:
				// interior span, parented within the trace
			default:
				t.Fatalf("request %d: span %q parent %q is neither the remote root nor a span of trace %s",
					i, sp.Name, sp.Parent, rq.trace)
			}
		}
		if roots != 1 {
			t.Fatalf("request %d: %d local roots, want exactly 1", i, roots)
		}
		found := false
		for _, sp := range spans {
			found = found || sp.Name == "store.ingest_stream"
		}
		if !found {
			t.Fatalf("request %d: no store.ingest_stream span in trace (got %d spans)", i, len(spans))
		}
	}
}
