package repro

import (
	"context"
	"encoding/json"
	"io"

	"repro/internal/workload"
)

// TrajectoryPoint is one generation of a benchmark trajectory: the
// per-generation quantities BENCH_*.json files capture mechanically
// (throughput decay of paper Fig. 2, the rewrite ratio behind Fig. 6's
// trade-off, and the fragment count of Eq. 1).
type TrajectoryPoint struct {
	Engine          string  `json:"engine"`
	Gen             int     `json:"gen"` // 1-based generation number
	Label           string  `json:"label"`
	LogicalBytes    int64   `json:"logical_bytes"`
	ThroughputMBps  float64 `json:"throughput_MBps"`
	UniqueBytes     int64   `json:"unique_bytes"`
	DedupedBytes    int64   `json:"deduped_bytes"`
	RewrittenBytes  int64   `json:"rewritten_bytes"`
	RewriteRatio    float64 `json:"rewrite_ratio"` // rewritten / logical bytes
	Fragments       int     `json:"fragments"`
	ContainerReads  int64   `json:"container_reads"`
	RestoreMBps     float64 `json:"restore_MBps"`
	Efficiency      float64 `json:"efficiency"`
	SimulatedSecond float64 `json:"simulated_s"` // cumulative simulated time after this generation
}

// RunTrajectory ingests Generations backups of the single-user workload
// into a fresh store of the given engine kind, restoring each generation,
// and returns one TrajectoryPoint per generation.
func RunTrajectory(cfg ExperimentConfig, kind EngineKind) ([]TrajectoryPoint, error) {
	cfg = cfg.withDefaults()
	store, err := Open(Options{
		Engine:          kind,
		Alpha:           cfg.Alpha,
		ExpectedBytes:   cfg.perGenBytes() * int64(cfg.Generations),
		TrackEfficiency: true,
		Workers:         cfg.Workers,
	})
	if err != nil {
		return nil, err
	}
	sched, err := workload.NewSingle(cfg.workloadConfig())
	if err != nil {
		return nil, err
	}
	points := make([]TrajectoryPoint, 0, cfg.Generations)
	for g := 0; g < cfg.Generations; g++ {
		bk := sched.Next()
		b, err := store.Backup(context.Background(), bk.Label, bk.Stream)
		if err != nil {
			return nil, err
		}
		ropts := DefaultRestoreOptions()
		if cfg.RestoreCache > 0 {
			ropts.CacheContainers = cfg.RestoreCache
		}
		rst, err := store.RestoreWith(context.Background(), b, nil, ropts)
		if err != nil {
			return nil, err
		}
		st := b.Stats
		ratio := 0.0
		if st.LogicalBytes > 0 {
			ratio = float64(st.RewrittenBytes) / float64(st.LogicalBytes)
		}
		points = append(points, TrajectoryPoint{
			Engine:          store.Engine(),
			Gen:             g + 1,
			Label:           b.Label,
			LogicalBytes:    st.LogicalBytes,
			ThroughputMBps:  st.ThroughputMBps(),
			UniqueBytes:     st.UniqueBytes,
			DedupedBytes:    st.DedupedBytes,
			RewrittenBytes:  st.RewrittenBytes,
			RewriteRatio:    ratio,
			Fragments:       rst.Fragments,
			ContainerReads:  rst.ContainerReads,
			RestoreMBps:     rst.ThroughputMBps(),
			Efficiency:      st.Efficiency(),
			SimulatedSecond: store.SimulatedTime().Seconds(),
		})
	}
	return points, nil
}

// WriteTrajectoryJSONL writes points as JSONL: one JSON object per line,
// the machine-readable per-generation format of defragbench -json.
func WriteTrajectoryJSONL(w io.Writer, points []TrajectoryPoint) error {
	enc := json.NewEncoder(w)
	for _, p := range points {
		if err := enc.Encode(p); err != nil {
			return err
		}
	}
	return nil
}
