package repro

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestRunTrajectory(t *testing.T) {
	cfg := DefaultExperimentConfig()
	cfg.Generations = 3
	cfg.FilesPerUser = 8
	points, err := RunTrajectory(cfg, DeFrag)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != cfg.Generations {
		t.Fatalf("got %d points, want %d", len(points), cfg.Generations)
	}
	for i, p := range points {
		if p.Gen != i+1 {
			t.Errorf("point %d: Gen = %d", i, p.Gen)
		}
		if p.Engine == "" || p.Label == "" {
			t.Errorf("point %d missing engine/label: %+v", i, p)
		}
		if p.LogicalBytes <= 0 || p.ThroughputMBps <= 0 {
			t.Errorf("point %d has empty measurements: %+v", i, p)
		}
		if p.RewriteRatio < 0 || p.RewriteRatio > 1 {
			t.Errorf("point %d rewrite ratio out of range: %v", i, p.RewriteRatio)
		}
	}
	// Simulated time is cumulative, so it must be non-decreasing.
	for i := 1; i < len(points); i++ {
		if points[i].SimulatedSecond < points[i-1].SimulatedSecond {
			t.Errorf("simulated time went backwards at gen %d", i+1)
		}
	}

	var sb strings.Builder
	if err := WriteTrajectoryJSONL(&sb, points); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(sb.String(), "\n"), "\n")
	if len(lines) != len(points) {
		t.Fatalf("JSONL has %d lines, want %d", len(lines), len(points))
	}
	var rec TrajectoryPoint
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil {
		t.Fatalf("line 0 is not valid JSON: %v", err)
	}
	if rec != points[0] {
		t.Errorf("round-trip mismatch: %+v != %+v", rec, points[0])
	}
}
